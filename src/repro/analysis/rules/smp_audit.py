"""SMP001 — inventory every piece of state a second vCPU would race on.

The ROADMAP's SMP refactor needs a work-list, not a vibe: before any
multi-vCPU change lands, every piece of shared mutable state in the
hardware and VMM layers must be *known* and *tracked*.  This rule
builds that inventory mechanically and pins it to
``docs/SMP_READINESS.md``: an item in the tree but missing from the
committed report fails tier-1, so the report can never silently rot.
Regenerate it with ``python -m repro.analysis --smp-report``.

Three item kinds, scoped to ``repro.hw.*`` and ``repro.core.*``:

* **module-global** — module-level names bound to mutable containers
  or project-class instances (``_derive_memo = _Memo()``).  ALL_CAPS
  names bound to *literal* containers are treated as
  constants-by-convention and skipped; instances are never skipped.
* **class-attr** — mutable containers in a class body: one object
  shared by every instance on every vCPU.
* **aliasing** — a ``TLBEntry``/``PageMetadata`` local that escapes a
  function more than once (returned *and* stored/passed), creating two
  live references to one mutable record — exactly what a per-vCPU TLB
  split would have to reconcile.

Since the concurrency-discipline PR, every item must also carry a
*declared discipline* — the code states, machine-checkably, how the
state survives a second vCPU:

* ``GUARDED_BY = {"_name": "_lock"}`` at module or class scope
  declares a :class:`repro.hw.sync.VLock` guard (RACE001 then checks
  every access holds it);
* binding the state through ``PerCpu(...)`` or ``freeze(...)`` makes
  it per-CPU or immutable;
* ``@reconcile("var", why=...)`` on the escaping function declares an
  aliased record as shared on purpose, with a named reconcile path.

An inventoried item with no declared discipline fails tier-1 just like
an item missing from the report.

Everything is derived deterministically from the AST (no line numbers
in keys or in the report), so the report only changes when the state
inventory actually changes.
"""

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.rules.base import Rule, dotted_name

SCOPE_PREFIXES = ("repro.hw.", "repro.core.")

REPORT_PATH = Path("docs") / "SMP_READINESS.md"

#: stdlib factories producing mutable containers.
MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter",
})

#: Mutable-record classes whose aliasing across objects we audit.
ALIAS_CLASS_NAMES = frozenset({"TLBEntry", "PageMetadata"})

#: repro.hw.sync wrappers whose presence *is* a discipline: binding
#: shared state through them answers the SMP question at the
#: definition site.
DISCIPLINE_WRAPPERS = {
    "PerCpu": "per-CPU (`PerCpu` cells — no cross-vCPU sharing)",
    "freeze": "frozen (`freeze` — read-only after construction)",
}

_CONST_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")


class Item:
    """One inventory entry; ``key`` is its stable identity."""

    __slots__ = ("key", "kind", "detail", "node", "discipline")

    def __init__(self, key: str, kind: str, detail: str,
                 node: Optional[ast.AST] = None,
                 discipline: Optional[str] = None):
        self.key = key
        self.kind = kind      # "module-global" | "class-attr" | "aliasing"
        self.detail = detail
        self.node = node
        self.discipline = discipline  # None = undeclared (SMP001 fails)


# ----------------------------------------------------------------------
# inventory construction
# ----------------------------------------------------------------------

def _mutable_value_kind(value: ast.AST,
                        own_classes: Set[str]) -> Optional[str]:
    """"literal", "factory", "instance" for a mutable binding, else None."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "literal"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if tail in MUTABLE_FACTORIES:
            return "factory"
        if tail in own_classes:
            return "instance"
    return None


def _own_class_names(tree: ast.Module) -> Set[str]:
    return {stmt.name for stmt in tree.body
            if isinstance(stmt, ast.ClassDef)}


def _declared_guards(tree: ast.Module) -> Dict[str, str]:
    """``GUARDED_BY`` declarations: state name -> lock name.

    Module-scope dicts guard module globals (``"_memo" -> "_lock"``);
    a class-body dict guards that class's attributes, keyed
    ``"Cls.attr"``.  Only literal str->str entries count — the
    declaration must be readable without executing anything.
    """
    guards: Dict[str, str] = {}

    def scan(body, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                scan(stmt.body, stmt.name + ".")
                continue
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "GUARDED_BY"
                       for t in stmt.targets):
                continue
            if not isinstance(stmt.value, ast.Dict):
                continue
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    guards[prefix + key.value] = value.value

    scan(tree.body, "")
    return guards


def _wrapper_discipline(value: ast.AST) -> Optional[str]:
    """Discipline string when ``value`` is a PerCpu(...)/freeze(...) call."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    return DISCIPLINE_WRAPPERS.get(name.rsplit(".", 1)[-1])


def _module_globals(mod: ModuleInfo) -> Iterable[Item]:
    own_classes = _own_class_names(mod.tree)
    guards = _declared_guards(mod.tree)
    for stmt in mod.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None:
            continue
        wrapped = _wrapper_discipline(value)
        kind = _mutable_value_kind(value, own_classes)
        if kind is None and wrapped is None:
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue
            if wrapped is not None:
                yield Item(
                    f"{mod.module}:{name}", "module-global",
                    "shared state bound through a sync wrapper at module "
                    "scope", stmt, discipline=wrapped)
                continue
            if kind != "instance" and _CONST_NAME_RE.match(name):
                continue  # constant by convention; instances never are
            what = (f"`{dotted_name(value.func)}(...)` instance"
                    if kind == "instance"
                    else "mutable container")
            lock = guards.get(name)
            yield Item(
                f"{mod.module}:{name}", "module-global",
                f"{what} at module scope — one object shared by every "
                "vCPU; needs a lock, per-CPU split, or freeze",
                stmt,
                discipline=(f"guarded by `{lock}`"
                            if lock is not None else None))


def _class_attrs(mod: ModuleInfo) -> Iterable[Item]:
    own_classes = _own_class_names(mod.tree)
    guards = _declared_guards(mod.tree)
    for cls in mod.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        for stmt in cls.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            wrapped = _wrapper_discipline(value)
            kind = _mutable_value_kind(value, own_classes)
            if kind is None and wrapped is None:
                continue
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if wrapped is not None:
                    yield Item(
                        f"{mod.module}:{cls.name}.{name}", "class-attr",
                        "shared class attribute bound through a sync "
                        "wrapper", stmt, discipline=wrapped)
                    continue
                if kind != "instance" and _CONST_NAME_RE.match(name):
                    continue
                lock = guards.get(f"{cls.name}.{name}")
                yield Item(
                    f"{mod.module}:{cls.name}.{name}", "class-attr",
                    "mutable class attribute — shared by every instance, "
                    "so by every vCPU touching the class",
                    stmt,
                    discipline=(f"guarded by `{lock}`"
                                if lock is not None else None))


def _walk_pruned(root: ast.AST):
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def reconciled_names(fn_node: ast.AST) -> Set[str]:
    """Variable names an ``@reconcile("name", why=...)`` decorator on
    ``fn_node`` declares as deliberately-shared escapes."""
    names: Set[str] = set()
    for dec in getattr(fn_node, "decorator_list", ()):
        if not isinstance(dec, ast.Call):
            continue
        dec_name = dotted_name(dec.func)
        if dec_name is None or dec_name.rsplit(".", 1)[-1] != "reconcile":
            continue
        for arg in dec.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.add(arg.value)
    return names


def _aliasing(mod: ModuleInfo, project) -> Iterable[Item]:
    cg = project.callgraph
    for fn in cg.functions_in(mod):
        tracked: Set[str] = set()
        for name, cls_key in fn.param_types.items():
            if cls_key[1].rsplit(".", 1)[-1] in ALIAS_CLASS_NAMES:
                tracked.add(name)
        for sub in _walk_pruned(fn.node):
            if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)):
                callee_name = dotted_name(sub.value.func)
                if callee_name is not None and callee_name.rsplit(
                        ".", 1)[-1] in ALIAS_CLASS_NAMES:
                    tracked.add(sub.targets[0].id)
                    continue
                site = fn.site_for(sub.value)
                if site is not None and site.callee is not None:
                    ret = cg.functions[site.callee].return_type
                    if ret is not None and ret[1].rsplit(
                            ".", 1)[-1] in ALIAS_CLASS_NAMES:
                        tracked.add(sub.targets[0].id)
        if not tracked:
            continue
        escapes: Dict[str, List[str]] = {name: [] for name in tracked}
        for sub in _walk_pruned(fn.node):
            if isinstance(sub, ast.Return) and isinstance(
                    sub.value, ast.Name) and sub.value.id in tracked:
                escapes[sub.value.id].append("return")
            elif isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in tracked:
                        escapes[arg.id].append("call-arg")
            elif isinstance(sub, ast.Assign):
                if not (isinstance(sub.value, ast.Name)
                        and sub.value.id in tracked):
                    continue
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        escapes[sub.value.id].append("store")
        reconciled = reconciled_names(fn.node)
        for name in sorted(tracked):
            kinds = escapes[name]
            if len(kinds) >= 2 and ("return" in kinds or "store" in kinds):
                yield Item(
                    f"{mod.module}:{fn.qualname}:{name}", "aliasing",
                    "mutable record escapes via "
                    + " + ".join(sorted(set(kinds)))
                    + " — two live references to one entry; a per-vCPU "
                    "split must reconcile or copy",
                    fn.node,
                    discipline=("shared on purpose (`@reconcile` names the "
                                "reconcile path)"
                                if name in reconciled else None))


def build_inventory(mod: ModuleInfo, project) -> List[Item]:
    """All SMP001 items for one module, sorted by key."""
    if not mod.module.startswith(SCOPE_PREFIXES):
        return []
    items = list(_module_globals(mod))
    items += list(_class_attrs(mod))
    items += list(_aliasing(mod, project))
    items.sort(key=lambda item: item.key)
    return items


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

_SECTIONS = (
    ("module-global", "Module-level mutable state"),
    ("class-attr", "Mutable class attributes"),
    ("aliasing", "Cross-object aliasing of frames/TLB entries"),
)


def render_report(items: Iterable[Item]) -> str:
    """Deterministic markdown for ``docs/SMP_READINESS.md``."""
    by_kind: Dict[str, List[Item]] = {kind: [] for kind, _ in _SECTIONS}
    for item in items:
        by_kind.setdefault(item.kind, []).append(item)
    lines = [
        "# SMP readiness: shared mutable state audit",
        "",
        "Generated by `python -m repro.analysis --smp-report`; do not",
        "edit by hand.  SMP001 fails tier-1 whenever shared mutable",
        "state exists in `repro.hw`/`repro.core` without an entry here,",
        "so this file is the authoritative work-list for the multi-vCPU",
        "refactor (ROADMAP): every item below must become locked,",
        "per-CPU, or immutable before SMP lands.  Each item's declared",
        "discipline (GUARDED_BY / PerCpu / freeze / @reconcile) is",
        "listed with it; an item with no discipline also fails SMP001.",
        "",
    ]
    for kind, title in _SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        section = sorted(by_kind.get(kind, []), key=lambda i: i.key)
        if not section:
            lines.append("_(none found)_")
        else:
            for item in section:
                line = f"- `{item.key}` — {item.detail}"
                if item.discipline is not None:
                    line += f"  \n  **discipline:** {item.discipline}"
                lines.append(line)
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the rule
# ----------------------------------------------------------------------

class SmpAuditRule(Rule):
    rule_id = "SMP001"
    name = "smp-shared-state"
    summary = ("shared mutable state in hw/core must be inventoried in "
               "docs/SMP_READINESS.md")

    def __init__(self):
        self._project = None
        self._report_cache: Dict[Path, Optional[str]] = {}

    def begin_project(self, project) -> None:
        self._project = project
        self._report_cache = {}

    def _project_for(self, mod: ModuleInfo):
        if self._project is not None and mod in self._project:
            return self._project
        from repro.analysis.flow import ProjectContext
        return ProjectContext([mod])

    def _report_text(self, mod: ModuleInfo) -> Optional[str]:
        """Committed report for the tree ``mod`` belongs to, or None."""
        probe = mod.path.resolve().parent
        for candidate in (probe, *probe.parents):
            if candidate in self._report_cache:
                return self._report_cache[candidate]
            if (candidate / "pyproject.toml").is_file():
                report = candidate / REPORT_PATH
                text = (report.read_text(encoding="utf-8")
                        if report.is_file() else None)
                self._report_cache[candidate] = text
                return text
        return None

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        items = build_inventory(mod, self._project_for(mod))
        if not items:
            return
        text = self._report_text(mod)
        for item in items:
            if text is not None and f"`{item.key}`" in text:
                if item.discipline is None:
                    yield self.finding(
                        mod,
                        item.node if item.node is not None else mod.tree,
                        f"{item.kind} shared state `{item.key}` has no "
                        "declared concurrency discipline — guard it "
                        "(GUARDED_BY + VLock), make it PerCpu, freeze it, "
                        "or annotate the escape with @reconcile")
                continue
            yield self.finding(
                mod, item.node if item.node is not None else mod.tree,
                f"{item.kind} shared state `{item.key}` is not inventoried "
                "in docs/SMP_READINESS.md — regenerate it with "
                "`python -m repro.analysis --smp-report`")
