"""SMP001 — inventory every piece of state a second vCPU would race on.

The ROADMAP's SMP refactor needs a work-list, not a vibe: before any
multi-vCPU change lands, every piece of shared mutable state in the
hardware and VMM layers must be *known* and *tracked*.  This rule
builds that inventory mechanically and pins it to
``docs/SMP_READINESS.md``: an item in the tree but missing from the
committed report fails tier-1, so the report can never silently rot.
Regenerate it with ``python -m repro.analysis --smp-report``.

Three item kinds, scoped to ``repro.hw.*`` and ``repro.core.*``:

* **module-global** — module-level names bound to mutable containers
  or project-class instances (``_derive_memo = _Memo()``).  ALL_CAPS
  names bound to *literal* containers are treated as
  constants-by-convention and skipped; instances are never skipped.
* **class-attr** — mutable containers in a class body: one object
  shared by every instance on every vCPU.
* **aliasing** — a ``TLBEntry``/``PageMetadata`` local that escapes a
  function more than once (returned *and* stored/passed), creating two
  live references to one mutable record — exactly what a per-vCPU TLB
  split would have to reconcile.

Everything is derived deterministically from the AST (no line numbers
in keys or in the report), so the report only changes when the state
inventory actually changes.
"""

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.rules.base import Rule, dotted_name

SCOPE_PREFIXES = ("repro.hw.", "repro.core.")

REPORT_PATH = Path("docs") / "SMP_READINESS.md"

#: stdlib factories producing mutable containers.
MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter",
})

#: Mutable-record classes whose aliasing across objects we audit.
ALIAS_CLASS_NAMES = frozenset({"TLBEntry", "PageMetadata"})

_CONST_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")


class Item:
    """One inventory entry; ``key`` is its stable identity."""

    __slots__ = ("key", "kind", "detail", "node")

    def __init__(self, key: str, kind: str, detail: str,
                 node: Optional[ast.AST] = None):
        self.key = key
        self.kind = kind      # "module-global" | "class-attr" | "aliasing"
        self.detail = detail
        self.node = node


# ----------------------------------------------------------------------
# inventory construction
# ----------------------------------------------------------------------

def _mutable_value_kind(value: ast.AST,
                        own_classes: Set[str]) -> Optional[str]:
    """"literal", "factory", "instance" for a mutable binding, else None."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "literal"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if tail in MUTABLE_FACTORIES:
            return "factory"
        if tail in own_classes:
            return "instance"
    return None


def _own_class_names(tree: ast.Module) -> Set[str]:
    return {stmt.name for stmt in tree.body
            if isinstance(stmt, ast.ClassDef)}


def _module_globals(mod: ModuleInfo) -> Iterable[Item]:
    own_classes = _own_class_names(mod.tree)
    for stmt in mod.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None:
            continue
        kind = _mutable_value_kind(value, own_classes)
        if kind is None:
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue
            if kind != "instance" and _CONST_NAME_RE.match(name):
                continue  # constant by convention; instances never are
            what = (f"`{dotted_name(value.func)}(...)` instance"
                    if kind == "instance"
                    else "mutable container")
            yield Item(
                f"{mod.module}:{name}", "module-global",
                f"{what} at module scope — one object shared by every "
                "vCPU; needs a lock, per-CPU split, or freeze",
                stmt)


def _class_attrs(mod: ModuleInfo) -> Iterable[Item]:
    own_classes = _own_class_names(mod.tree)
    for cls in mod.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        for stmt in cls.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            kind = _mutable_value_kind(value, own_classes)
            if kind is None:
                continue
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if kind != "instance" and _CONST_NAME_RE.match(name):
                    continue
                yield Item(
                    f"{mod.module}:{cls.name}.{name}", "class-attr",
                    "mutable class attribute — shared by every instance, "
                    "so by every vCPU touching the class",
                    stmt)


def _walk_pruned(root: ast.AST):
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _aliasing(mod: ModuleInfo, project) -> Iterable[Item]:
    cg = project.callgraph
    for fn in cg.functions_in(mod):
        tracked: Set[str] = set()
        for name, cls_key in fn.param_types.items():
            if cls_key[1].rsplit(".", 1)[-1] in ALIAS_CLASS_NAMES:
                tracked.add(name)
        for sub in _walk_pruned(fn.node):
            if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)):
                callee_name = dotted_name(sub.value.func)
                if callee_name is not None and callee_name.rsplit(
                        ".", 1)[-1] in ALIAS_CLASS_NAMES:
                    tracked.add(sub.targets[0].id)
                    continue
                site = fn.site_for(sub.value)
                if site is not None and site.callee is not None:
                    ret = cg.functions[site.callee].return_type
                    if ret is not None and ret[1].rsplit(
                            ".", 1)[-1] in ALIAS_CLASS_NAMES:
                        tracked.add(sub.targets[0].id)
        if not tracked:
            continue
        escapes: Dict[str, List[str]] = {name: [] for name in tracked}
        for sub in _walk_pruned(fn.node):
            if isinstance(sub, ast.Return) and isinstance(
                    sub.value, ast.Name) and sub.value.id in tracked:
                escapes[sub.value.id].append("return")
            elif isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in tracked:
                        escapes[arg.id].append("call-arg")
            elif isinstance(sub, ast.Assign):
                if not (isinstance(sub.value, ast.Name)
                        and sub.value.id in tracked):
                    continue
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        escapes[sub.value.id].append("store")
        for name in sorted(tracked):
            kinds = escapes[name]
            if len(kinds) >= 2 and ("return" in kinds or "store" in kinds):
                yield Item(
                    f"{mod.module}:{fn.qualname}:{name}", "aliasing",
                    "mutable record escapes via "
                    + " + ".join(sorted(set(kinds)))
                    + " — two live references to one entry; a per-vCPU "
                    "split must reconcile or copy",
                    fn.node)


def build_inventory(mod: ModuleInfo, project) -> List[Item]:
    """All SMP001 items for one module, sorted by key."""
    if not mod.module.startswith(SCOPE_PREFIXES):
        return []
    items = list(_module_globals(mod))
    items += list(_class_attrs(mod))
    items += list(_aliasing(mod, project))
    items.sort(key=lambda item: item.key)
    return items


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

_SECTIONS = (
    ("module-global", "Module-level mutable state"),
    ("class-attr", "Mutable class attributes"),
    ("aliasing", "Cross-object aliasing of frames/TLB entries"),
)


def render_report(items: Iterable[Item]) -> str:
    """Deterministic markdown for ``docs/SMP_READINESS.md``."""
    by_kind: Dict[str, List[Item]] = {kind: [] for kind, _ in _SECTIONS}
    for item in items:
        by_kind.setdefault(item.kind, []).append(item)
    lines = [
        "# SMP readiness: shared mutable state audit",
        "",
        "Generated by `python -m repro.analysis --smp-report`; do not",
        "edit by hand.  SMP001 fails tier-1 whenever shared mutable",
        "state exists in `repro.hw`/`repro.core` without an entry here,",
        "so this file is the authoritative work-list for the multi-vCPU",
        "refactor (ROADMAP): every item below must become locked,",
        "per-CPU, or immutable before SMP lands.",
        "",
    ]
    for kind, title in _SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        section = sorted(by_kind.get(kind, []), key=lambda i: i.key)
        if not section:
            lines.append("_(none found)_")
        else:
            for item in section:
                lines.append(f"- `{item.key}` — {item.detail}")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the rule
# ----------------------------------------------------------------------

class SmpAuditRule(Rule):
    rule_id = "SMP001"
    name = "smp-shared-state"
    summary = ("shared mutable state in hw/core must be inventoried in "
               "docs/SMP_READINESS.md")

    def __init__(self):
        self._project = None
        self._report_cache: Dict[Path, Optional[str]] = {}

    def begin_project(self, project) -> None:
        self._project = project
        self._report_cache = {}

    def _project_for(self, mod: ModuleInfo):
        if self._project is not None and mod in self._project:
            return self._project
        from repro.analysis.flow import ProjectContext
        return ProjectContext([mod])

    def _report_text(self, mod: ModuleInfo) -> Optional[str]:
        """Committed report for the tree ``mod`` belongs to, or None."""
        probe = mod.path.resolve().parent
        for candidate in (probe, *probe.parents):
            if candidate in self._report_cache:
                return self._report_cache[candidate]
            if (candidate / "pyproject.toml").is_file():
                report = candidate / REPORT_PATH
                text = (report.read_text(encoding="utf-8")
                        if report.is_file() else None)
                self._report_cache[candidate] = text
                return text
        return None

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        items = build_inventory(mod, self._project_for(mod))
        if not items:
            return
        text = self._report_text(mod)
        for item in items:
            if text is not None and f"`{item.key}`" in text:
                continue
            yield self.finding(
                mod, item.node if item.node is not None else mod.tree,
                f"{item.kind} shared state `{item.key}` is not inventoried "
                "in docs/SMP_READINESS.md — regenerate it with "
                "`python -m repro.analysis --smp-report`")
