"""Project-wide call graph with lightweight type resolution.

Every interprocedural rule needs the same three questions answered:
*which functions exist*, *who calls whom*, and *what object a call
receiver is*.  This module answers them once, for the whole analysed
tree, so cycle accounting (CYC001) and the taint pass (SEC002/SEC003)
reason over one shared graph instead of each re-deriving a private,
weaker one.

Resolution is deliberately "type-lite" — no inference engine, just the
facts the tree states outright:

* bare calls resolve to nested defs of the enclosing function, then
  module-level functions, then ``from m import f`` imports;
* ``self.m()`` / ``cls.m()`` resolve to methods of the enclosing class
  (walking declared bases);
* attribute calls through *known engine objects* resolve via a local
  type environment seeded from parameter annotations, constructor
  assignments (``x = CloakEngine(...)``), instance-attribute types
  (``self.cloak = CloakEngine(...)`` in ``__init__``), and callee
  return annotations (``self.domains.get(view)`` yields a
  ``ProtectionDomain``);
* module-qualified calls (``crypto.make_iv(...)``) resolve through the
  module's import aliases.

Anything else stays an *unresolved* call site that still records its
terminal name, so name-keyed rules (charge detection, sink names) keep
working on code the resolver cannot see through.
"""

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleInfo
from repro.analysis.rules.base import import_aliases, dotted_name

#: (dotted module name, qualname within the module).
FuncKey = Tuple[str, str]
ClassKey = Tuple[str, str]

#: Qualname used for a module's top-level statement pseudo-function.
MODULE_SCOPE = "<module>"


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("node", "name", "callee", "is_attr", "is_constructor")

    def __init__(self, node: ast.Call, name: str, callee: Optional[FuncKey],
                 is_attr: bool, is_constructor: bool = False):
        self.node = node
        self.name = name            # terminal callable name, e.g. "decrypt_page"
        self.callee = callee        # resolved FuncKey, or None
        self.is_attr = is_attr      # spelled obj.name(...) rather than name(...)
        self.is_constructor = is_constructor

    def __repr__(self) -> str:
        return f"CallSite({self.name!r} -> {self.callee})"


class FunctionNode:
    """One function (or the module-level pseudo-function) in the graph."""

    def __init__(self, module: ModuleInfo, node: ast.AST, qualname: str,
                 cls: Optional[ClassKey], parent: Optional[FuncKey]):
        self.module = module
        self.node = node
        self.qualname = qualname
        self.key: FuncKey = (module.module, qualname)
        self.cls = cls              # enclosing class, if a method
        self.parent = parent        # enclosing function, if nested
        self.params: List[str] = []
        self.param_types: Dict[str, ClassKey] = {}
        self.return_type: Optional[ClassKey] = None
        self.is_staticmethod = False
        self.is_classmethod = False
        self.children: Dict[str, FuncKey] = {}   # nested defs by name
        self.calls: List[CallSite] = []
        self.call_names: Set[str] = set()
        self._call_by_node: Dict[int, CallSite] = {}

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def site_for(self, node: ast.Call) -> Optional[CallSite]:
        return self._call_by_node.get(id(node))

    def arg_to_param(self, index: int) -> int:
        """Positional-argument index -> parameter index at this callee.

        Bound calls (methods reached through an instance, constructors)
        consume the implicit first parameter; staticmethods do not.
        """
        if self.cls is not None and not self.is_staticmethod:
            return index + 1
        return index

    def __repr__(self) -> str:
        return f"FunctionNode({self.key})"


class ClassNode:
    """One class definition: bases, methods, known attribute types."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef, qualname: str):
        self.module = module
        self.node = node
        self.key: ClassKey = (module.module, qualname)
        self.base_refs: List[ast.expr] = list(node.bases)
        self.bases: List[ClassKey] = []
        self.methods: Dict[str, FuncKey] = {}
        self.attr_types: Dict[str, ClassKey] = {}


class CallGraph:
    """The shared graph: functions, classes, and resolved call edges."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.functions: Dict[FuncKey, FunctionNode] = {}
        self.classes: Dict[ClassKey, ClassNode] = {}
        self._module_funcs: Dict[str, Dict[str, FuncKey]] = {}
        self._aliases: Dict[str, Dict[str, str]] = {}
        self._module_names: Set[str] = {m.module for m in modules}
        self._by_module: Dict[str, List[FuncKey]] = {}
        self._index()
        self._link_classes()
        self._resolve_calls()

    @classmethod
    def build(cls, modules: Sequence[ModuleInfo]) -> "CallGraph":
        return cls(modules)

    # -- queries ---------------------------------------------------------------

    def functions_in(self, mod: ModuleInfo,
                     include_module_scope: bool = False) -> Iterable[FunctionNode]:
        for key in self._by_module.get(mod.module, ()):
            fn = self.functions[key]
            if fn.module is not mod:
                continue  # same dotted name from another fixture tree
            if fn.qualname == MODULE_SCOPE and not include_module_scope:
                continue
            yield fn

    def find_method(self, cls_key: ClassKey, name: str) -> Optional[FuncKey]:
        """Method lookup walking declared (resolved) base classes."""
        seen: Set[ClassKey] = set()
        queue = [cls_key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.bases)
        return None

    def attr_type(self, cls_key: ClassKey, attr: str) -> Optional[ClassKey]:
        seen: Set[ClassKey] = set()
        queue = [cls_key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.bases)
        return None

    # -- pass A: index every class and function --------------------------------

    def _index(self) -> None:
        for mod in self.modules:
            self._aliases[mod.module] = import_aliases(mod.tree)
            self._module_funcs.setdefault(mod.module, {})
            pseudo = FunctionNode(mod, mod.tree, MODULE_SCOPE, None, None)
            self._register(pseudo)
            self._index_scope(mod, mod.tree, (), None, pseudo.key)

    def _register(self, fn: FunctionNode) -> None:
        self.functions[fn.key] = fn
        self._by_module.setdefault(fn.key[0], []).append(fn.key)

    def _index_scope(self, mod: ModuleInfo, node: ast.AST,
                     stack: Tuple[str, ...], cls: Optional[ClassKey],
                     parent: Optional[FuncKey]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qual = ".".join(stack + (child.name,))
                info = ClassNode(mod, child, qual)
                self.classes.setdefault(info.key, info)
                self._index_scope(mod, child, stack + (child.name,),
                                  info.key, None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(stack + (child.name,))
                fn = FunctionNode(mod, child, qual, cls, parent)
                fn.params = [a.arg for a in
                             child.args.posonlyargs + child.args.args
                             + child.args.kwonlyargs]
                for deco in child.decorator_list:
                    deco_name = dotted_name(deco)
                    if deco_name == "staticmethod":
                        fn.is_staticmethod = True
                    elif deco_name == "classmethod":
                        fn.is_classmethod = True
                self._register(fn)
                if cls is not None and parent is None:
                    self.classes[cls].methods.setdefault(child.name, fn.key)
                if not stack:
                    self._module_funcs[mod.module].setdefault(child.name, fn.key)
                if parent is not None and parent in self.functions:
                    self.functions[parent].children[child.name] = fn.key
                # Functions nested in a method stay associated with the
                # class for self-resolution, but are not methods.
                self._index_scope(mod, child, stack + (child.name,), cls,
                                  fn.key)

    # -- pass B: class bases, annotations, attribute types ---------------------

    def _link_classes(self) -> None:
        for info in self.classes.values():
            for base in info.base_refs:
                resolved = self._resolve_class_expr(base, info.module)
                if resolved is not None:
                    info.bases.append(resolved)
        for fn in self.functions.values():
            node = fn.node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                if arg.annotation is not None:
                    t = self._resolve_annotation(arg.annotation, fn.module)
                    if t is not None:
                        fn.param_types[arg.arg] = t
            if node.returns is not None:
                fn.return_type = self._resolve_annotation(node.returns,
                                                          fn.module)
        # Attribute types need method annotations, hence a third sweep.
        for info in self.classes.values():
            for method_key in info.methods.values():
                self._harvest_attr_types(info, self.functions[method_key])

    def _harvest_attr_types(self, info: ClassNode, fn: FunctionNode) -> None:
        env = dict(fn.param_types)
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            t = self._type_of_shallow(value, env, fn)
            if t is None and isinstance(stmt, ast.AnnAssign):
                t = self._resolve_annotation(stmt.annotation, fn.module)
            if t is None:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")):
                    info.attr_types.setdefault(target.attr, t)

    def _type_of_shallow(self, expr: ast.expr, env: Dict[str, ClassKey],
                         fn: FunctionNode) -> Optional[ClassKey]:
        """Type of an expression from names, constructors and annotations
        only — no call-graph recursion (used while the graph is still
        being built)."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            return self._resolve_class_expr(expr.func, fn.module)
        return None

    # -- pass C: resolve every call site ----------------------------------------

    def _resolve_calls(self) -> None:
        for fn in self.functions.values():
            self._resolve_function(fn)

    def _resolve_function(self, fn: FunctionNode) -> None:
        env: Dict[str, ClassKey] = dict(fn.param_types)
        if fn.cls is not None and fn.params and not fn.is_staticmethod:
            env.setdefault(fn.params[0], fn.cls)

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue  # nested scopes resolve on their own
                if isinstance(child, ast.Assign):
                    t = self._type_of(child.value, env, fn)
                    if t is not None:
                        for target in child.targets:
                            if isinstance(target, ast.Name):
                                env[target.id] = t
                elif isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Name):
                    t = None
                    if child.value is not None:
                        t = self._type_of(child.value, env, fn)
                    if t is None:
                        t = self._resolve_annotation(child.annotation,
                                                     fn.module)
                    if t is not None:
                        env[child.target.id] = t
                if isinstance(child, ast.Call):
                    self._note_call(child, env, fn)
                walk(child)

        walk(fn.node)

    def _note_call(self, call: ast.Call, env: Dict[str, ClassKey],
                   fn: FunctionNode) -> None:
        func = call.func
        callee: Optional[FuncKey] = None
        is_constructor = False
        if isinstance(func, ast.Name):
            name = func.id
            callee = self._resolve_bare(name, fn)
            if callee is None:
                cls_key = self._resolve_class_expr(func, fn.module)
                if cls_key is not None:
                    callee = self.find_method(cls_key, "__init__")
                    is_constructor = callee is not None
            site = CallSite(call, name, callee, is_attr=False,
                            is_constructor=is_constructor)
        elif isinstance(func, ast.Attribute):
            name = func.attr
            receiver_type = self._type_of(func.value, env, fn)
            if receiver_type is not None:
                callee = self.find_method(receiver_type, name)
            if callee is None:
                dotted = dotted_name(func)
                if dotted is not None:
                    callee = self._resolve_dotted_function(dotted, fn.module)
                    if callee is None:
                        cls_key = self._resolve_class_dotted(dotted,
                                                             fn.module)
                        if cls_key is not None:
                            callee = self.find_method(cls_key, "__init__")
                            is_constructor = callee is not None
            site = CallSite(call, name, callee, is_attr=True,
                            is_constructor=is_constructor)
        else:
            return  # calls of calls / subscripts: nothing nameable
        fn.calls.append(site)
        fn.call_names.add(site.name)
        fn._call_by_node[id(call)] = site

    def _resolve_bare(self, name: str, fn: FunctionNode) -> Optional[FuncKey]:
        scope = fn
        while scope is not None:
            if name in scope.children:
                return scope.children[name]
            scope = (self.functions.get(scope.parent)
                     if scope.parent is not None else None)
        if fn.cls is not None:
            # A bare name inside a class body's method never means a
            # sibling method (Python requires self.), so skip to module.
            pass
        module_funcs = self._module_funcs.get(fn.key[0], {})
        if name in module_funcs:
            return module_funcs[name]
        origin = self._aliases.get(fn.key[0], {}).get(name)
        if origin is not None:
            return self._resolve_dotted_function(origin, fn.module)
        return None

    def _resolve_dotted_function(self, dotted: str,
                                 mod: ModuleInfo) -> Optional[FuncKey]:
        full = self._substitute_alias(dotted, mod)
        if "." not in full:
            return self._module_funcs.get(mod.module, {}).get(full)
        module_part, _, func_part = full.rpartition(".")
        if module_part in self._module_names:
            return self._module_funcs.get(module_part, {}).get(func_part)
        # Method reference: repro.core.crypto.PageCipher.decrypt_page
        head, _, tail = module_part.rpartition(".")
        if head in self._module_names and (head, tail) in self.classes:
            return self.find_method((head, tail), func_part)
        return None

    # -- type machinery ----------------------------------------------------------

    def _type_of(self, expr: ast.expr, env: Dict[str, ClassKey],
                 fn: FunctionNode) -> Optional[ClassKey]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value, env, fn)
            if base is not None:
                return self.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            cls_key = self._resolve_class_expr(expr.func, fn.module)
            if cls_key is not None:
                return cls_key
            # A resolved callee's return annotation types the result:
            # self.domains.get(view) -> ProtectionDomain.
            site = fn.site_for(expr)
            if site is not None and site.callee is not None:
                return self.functions[site.callee].return_type
            if isinstance(expr.func, ast.Attribute):
                receiver = self._type_of(expr.func.value, env, fn)
                if receiver is not None:
                    method = self.find_method(receiver, expr.func.attr)
                    if method is not None:
                        return self.functions[method].return_type
            elif isinstance(expr.func, ast.Name):
                callee = self._resolve_bare(expr.func.id, fn)
                if callee is not None:
                    return self.functions[callee].return_type
            return None
        return None

    def _substitute_alias(self, dotted: str, mod: ModuleInfo) -> str:
        head, _, rest = dotted.partition(".")
        origin = self._aliases.get(mod.module, {}).get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def _resolve_class_dotted(self, dotted: str,
                              mod: ModuleInfo) -> Optional[ClassKey]:
        full = self._substitute_alias(dotted, mod)
        if "." not in full:
            key = (mod.module, full)
            return key if key in self.classes else None
        module_part, _, cls_part = full.rpartition(".")
        key = (module_part, cls_part)
        if module_part in self._module_names and key in self.classes:
            return key
        # Same-module nested class spelled with a dotted qualname.
        key = (mod.module, full)
        return key if key in self.classes else None

    def _resolve_class_expr(self, expr: ast.expr,
                            mod: ModuleInfo) -> Optional[ClassKey]:
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        return self._resolve_class_dotted(dotted, mod)

    def _resolve_annotation(self, ann: ast.expr,
                            mod: ModuleInfo) -> Optional[ClassKey]:
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            # Unwrap Optional[X]; other generics stay unresolved.
            base = dotted_name(ann.value)
            if base is not None and base.rsplit(".", 1)[-1] == "Optional":
                return self._resolve_annotation(ann.slice, mod)
            return None
        return self._resolve_class_expr(ann, mod)
