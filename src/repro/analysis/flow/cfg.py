"""Intraprocedural control-flow graphs with (post)dominators.

The path-sensitive rules (STATE001, MMU001) need two facts the AST
alone cannot give: *which statements can follow which* and *which
statements lie on every path* between two points.  This module builds
a statement-granularity CFG for one function body — one block per
statement, labelled edges for branches — and computes dominators and
post-dominators over it with the classic iterative set algorithm (the
graphs are function-sized, so the simple fixpoint beats the engineering
cost of Lengauer–Tarjan).

Modelling choices, deliberately conservative and documented here so
rule semantics are auditable:

* Every ``if``/``while``/``for`` test block gets a ``true`` edge into
  the body and a ``false`` edge to the join/else — including
  ``while True`` (constant tests are not folded; an extra path only
  makes post-dominance *harder* to claim, never easier).
* ``try`` bodies get one ``exc`` edge from the ``try`` statement's
  block to each handler entry — handlers are reachable, but mid-body
  implicit exceptions are not modelled (only explicit ``raise``
  statements route to handlers).  Rules that rely on post-dominance
  therefore reason about *normal* control flow plus explicit raises.
* ``finally`` bodies are built once and act as a funnel: every control
  transfer that crosses them (fallthrough, ``return``, ``raise``,
  ``break``, ``continue``) enters the funnel, and the funnel's exits
  fan out to every requested continuation.  This merges paths (a
  ``return`` inside ``try`` appears able to continue past the
  ``finally``), which again only weakens post-dominance claims.
* Nested ``def``/``class`` statements are opaque single blocks; their
  bodies get their own CFGs.

Public surface: :func:`build_cfg`, :class:`CFG` (``block_of``,
``enclosing_block``, ``successors``, ``dominates``,
``postdominates``, ``statements``).
"""

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

#: Edge labels.  ``None`` is plain fallthrough.
TRUE = "true"
FALSE = "false"
EXC = "exc"

#: (successor block index, edge label)
Edge = Tuple[int, Optional[str]]


def _header_roots(stmt: ast.AST) -> List[ast.AST]:
    """Subtrees a block's statement evaluates *itself*.

    Simple statements own their whole tree; compound statements own
    only their header (test / iter / with-items / subject) — their
    bodies are other blocks.  Nested ``def``/``class`` are opaque, so
    they own only their decorators and defaults, not the body.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots: List[ast.AST] = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
        return roots
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        roots = list(stmt.decorator_list)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            roots.extend(stmt.args.defaults)
            roots.extend(d for d in stmt.args.kw_defaults if d is not None)
        else:
            roots.extend(stmt.bases)
            roots.extend(stmt.keywords)
        return roots
    return [stmt]


class Block:
    """One CFG node: a single statement, or a synthetic marker."""

    __slots__ = ("index", "stmt", "kind", "succs", "preds")

    def __init__(self, index: int, stmt: Optional[ast.stmt] = None,
                 kind: str = "stmt"):
        self.index = index
        self.stmt = stmt
        self.kind = kind  # "entry" | "exit" | "stmt" | "handler" | "finally"
        self.succs: List[Edge] = []
        self.preds: List[Edge] = []

    def __repr__(self) -> str:
        what = self.kind if self.stmt is None else type(self.stmt).__name__
        return f"Block({self.index}, {what})"


class CFG:
    """The finished graph for one function body."""

    def __init__(self, func: ast.AST, blocks: List[Block], entry: int,
                 exit_index: int):
        self.func = func
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_index
        self._block_of: Dict[int, int] = {
            b.index: b.index for b in blocks
        }
        self._stmt_block: Dict[int, int] = {}
        for b in blocks:
            if b.stmt is not None:
                # A statement can sit in at most one block by construction.
                self._stmt_block.setdefault(id(b.stmt), b.index)
        self._node_block: Optional[Dict[int, int]] = None
        self._dom: Optional[Dict[int, FrozenSet[int]]] = None
        self._pdom: Optional[Dict[int, FrozenSet[int]]] = None

    # -- structure -------------------------------------------------------------

    def successors(self, index: int) -> Sequence[Edge]:
        return self.blocks[index].succs

    def predecessors(self, index: int) -> Sequence[Edge]:
        return self.blocks[index].preds

    def statements(self) -> Iterator[Tuple[int, ast.stmt]]:
        """Every (block index, statement) pair, in construction order."""
        for b in self.blocks:
            if b.stmt is not None:
                yield b.index, b.stmt

    def block_of(self, stmt: ast.stmt) -> Optional[int]:
        """Block carrying ``stmt`` itself (not its substatements)."""
        return self._stmt_block.get(id(stmt))

    def enclosing_block(self, node: ast.AST) -> Optional[int]:
        """Block whose statement *executes* ``node`` (e.g. the call
        inside an Assign, or inside an ``if`` test).

        Compound statements only claim their header expressions: a call
        in an ``if`` *body* belongs to the body statement's block, not
        the header's — otherwise the header block (built first) would
        swallow its whole subtree and post-dominance queries would
        collapse distinct program points into one block.
        """
        if self._node_block is None:
            index: Dict[int, int] = {}
            for b in self.blocks:
                if b.stmt is None:
                    continue
                index.setdefault(id(b.stmt), b.index)
                for root in _header_roots(b.stmt):
                    for sub in ast.walk(root):
                        index.setdefault(id(sub), b.index)
            self._node_block = index
        return self._node_block.get(id(node))

    # -- dominance -------------------------------------------------------------

    def dominators(self) -> Dict[int, FrozenSet[int]]:
        """block index -> the set of blocks dominating it."""
        if self._dom is None:
            self._dom = _dominator_sets(
                [b.index for b in self.blocks], self.entry,
                lambda n: [i for i, _ in self.blocks[n].preds])
        return self._dom

    def postdominators(self) -> Dict[int, FrozenSet[int]]:
        """block index -> the set of blocks post-dominating it."""
        if self._pdom is None:
            self._pdom = _dominator_sets(
                [b.index for b in self.blocks], self.exit,
                lambda n: [i for i, _ in self.blocks[n].succs])
        return self._pdom

    def dominates(self, a: int, b: int) -> bool:
        """True iff every entry->``b`` path passes through ``a``."""
        return a in self.dominators()[b]

    def postdominates(self, a: int, b: int) -> bool:
        """True iff every ``b``->exit path passes through ``a``."""
        return a in self.postdominators()[b]


def _dominator_sets(nodes, start, preds_of) -> Dict[int, FrozenSet[int]]:
    """Classic iterative dataflow: dom(n) = {n} ∪ ⋂ dom(pred).

    Works unchanged for post-dominators when ``preds_of`` yields
    successors and ``start`` is the exit.  Nodes unreachable from
    ``start`` keep the full set (vacuously dominated), which is the
    conventional — and for our rules conservative — answer.
    """
    everything = frozenset(nodes)
    dom: Dict[int, FrozenSet[int]] = {n: everything for n in nodes}
    dom[start] = frozenset({start})
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == start:
                continue
            preds = preds_of(n)
            if preds:
                acc = None
                for p in preds:
                    acc = dom[p] if acc is None else acc & dom[p]
                new = frozenset(acc | {n})
            else:
                new = everything
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

class _LoopCtx:
    __slots__ = ("header", "breaks")

    def __init__(self, header: int):
        self.header = header
        self.breaks: List[Edge] = []


class _TryCtx:
    __slots__ = ("handler_entries", "finally_entry", "loop_depth",
                 "pending_exit", "pending_breaks", "pending_continues")

    def __init__(self, handler_entries: List[int],
                 finally_entry: Optional[int], loop_depth: int):
        self.handler_entries = list(handler_entries)
        self.finally_entry = finally_entry
        self.loop_depth = loop_depth
        self.pending_exit = False
        self.pending_breaks: List[_LoopCtx] = []
        self.pending_continues: List[_LoopCtx] = []


class _Builder:
    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new(kind="entry")
        self.exit = self._new(kind="exit")
        self.loop_stack: List[_LoopCtx] = []
        self.try_stack: List[_TryCtx] = []

    # -- plumbing --------------------------------------------------------------

    def _new(self, stmt: Optional[ast.stmt] = None, kind: str = "stmt") -> int:
        block = Block(len(self.blocks), stmt, kind)
        self.blocks.append(block)
        return block.index

    def _edge(self, a: int, b: int, label: Optional[str]) -> None:
        self.blocks[a].succs.append((b, label))
        self.blocks[b].preds.append((a, label))

    def _connect(self, preds: List[Edge], target: int) -> None:
        for index, label in preds:
            self._edge(index, target, label)

    # -- exceptional / non-local routing ---------------------------------------

    def _route_to_exit(self, preds: List[Edge]) -> None:
        """Return (or unhandled raise): through enclosing finallys."""
        for ctx in reversed(self.try_stack):
            if ctx.finally_entry is not None:
                self._connect(preds, ctx.finally_entry)
                ctx.pending_exit = True
                return
        self._connect(preds, self.exit)

    def _route_raise(self, preds: List[Edge]) -> None:
        """Explicit raise: nearest live handlers, else finallys + exit."""
        for ctx in reversed(self.try_stack):
            if ctx.handler_entries:
                for index, _ in preds:
                    for handler in ctx.handler_entries:
                        self._edge(index, handler, EXC)
                return
            if ctx.finally_entry is not None:
                self._connect(preds, ctx.finally_entry)
                ctx.pending_exit = True
                return
        self._connect(preds, self.exit)

    def _route_break(self, preds: List[Edge], loop: _LoopCtx) -> None:
        depth = self.loop_stack.index(loop) + 1
        for ctx in reversed(self.try_stack):
            if ctx.finally_entry is not None and ctx.loop_depth >= depth:
                self._connect(preds, ctx.finally_entry)
                ctx.pending_breaks.append(loop)
                return
        loop.breaks.extend(preds)

    def _route_continue(self, preds: List[Edge], loop: _LoopCtx) -> None:
        depth = self.loop_stack.index(loop) + 1
        for ctx in reversed(self.try_stack):
            if ctx.finally_entry is not None and ctx.loop_depth >= depth:
                self._connect(preds, ctx.finally_entry)
                ctx.pending_continues.append(loop)
                return
        self._connect(preds, loop.header)

    # -- statement translation -------------------------------------------------

    def build(self) -> CFG:
        exits = self._seq(self.func.body, [(self.entry, None)])
        self._connect(exits, self.exit)
        return CFG(self.func, self.blocks, self.entry, self.exit)

    def _seq(self, stmts: Sequence[ast.stmt], preds: List[Edge]) -> List[Edge]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[Edge]) -> List[Edge]:
        block = self._new(stmt)
        self._connect(preds, block)

        if isinstance(stmt, ast.If):
            true_exits = self._seq(stmt.body, [(block, TRUE)])
            if stmt.orelse:
                false_exits = self._seq(stmt.orelse, [(block, FALSE)])
            else:
                false_exits = [(block, FALSE)]
            return true_exits + false_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            loop = _LoopCtx(block)
            self.loop_stack.append(loop)
            body_exits = self._seq(stmt.body, [(block, TRUE)])
            self._connect(body_exits, block)  # back edge
            self.loop_stack.pop()
            exits: List[Edge] = [(block, FALSE)]
            if stmt.orelse:
                exits = self._seq(stmt.orelse, exits)
            return exits + loop.breaks

        if isinstance(stmt, ast.Break):
            self._route_break([(block, None)], self.loop_stack[-1])
            return []

        if isinstance(stmt, ast.Continue):
            self._route_continue([(block, None)], self.loop_stack[-1])
            return []

        if isinstance(stmt, ast.Return):
            self._route_to_exit([(block, None)])
            return []

        if isinstance(stmt, ast.Raise):
            self._route_raise([(block, None)])
            return []

        if isinstance(stmt, ast.Try):
            return self._try(stmt, block)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._seq(stmt.body, [(block, None)])

        if isinstance(stmt, ast.Match):
            exits = []
            for case in stmt.cases:
                exits += self._seq(case.body, [(block, TRUE)])
            exits.append((block, FALSE))  # no case matched
            return exits

        # Plain statement (incl. nested def/class, kept opaque).
        return [(block, None)]

    def _try(self, stmt: ast.Try, block: int) -> List[Edge]:
        handler_entries = [self._new(h, kind="handler") for h in stmt.handlers]
        finally_entry = (self._new(kind="finally")
                         if stmt.finalbody else None)
        for handler in handler_entries:
            # "Something in the body may raise": keeps handlers
            # reachable without severing every body statement's
            # post-dominance (see module docstring).
            self._edge(block, handler, EXC)

        ctx = _TryCtx(handler_entries, finally_entry, len(self.loop_stack))
        self.try_stack.append(ctx)
        body_exits = self._seq(stmt.body, [(block, None)])
        if stmt.orelse:
            # Exceptions in else do not reach this try's handlers.
            ctx.handler_entries = []
            body_exits = self._seq(stmt.orelse, body_exits)

        ctx.handler_entries = []  # raises in handlers go outward
        handler_exits: List[Edge] = []
        for entry in handler_entries:
            handler_block = self.blocks[entry]
            handler_exits += self._seq(handler_block.stmt.body,
                                       [(entry, None)])

        normal_exits = body_exits + handler_exits
        self.try_stack.pop()

        if finally_entry is None:
            return normal_exits

        self._connect(normal_exits, finally_entry)
        finally_exits = self._seq(stmt.finalbody, [(finally_entry, None)])
        # Fan the funnel out to every continuation routed through it.
        if ctx.pending_exit:
            self._route_to_exit(finally_exits)
        for loop in ctx.pending_breaks:
            self._route_break(finally_exits, loop)
        for loop in ctx.pending_continues:
            self._route_continue(finally_exits, loop)
        # Normal fallthrough continues after the try statement.
        return finally_exits


def build_cfg(func: ast.AST) -> CFG:
    """CFG for one ``FunctionDef``/``AsyncFunctionDef`` (or any node
    with a statement-list ``body``, e.g. a ``Module`` in tests)."""
    if not hasattr(func, "body") or not isinstance(func.body, list):
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder(func).build()
