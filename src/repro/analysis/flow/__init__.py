"""Interprocedural dataflow infrastructure shared by rules.

:class:`ProjectContext` is the engine's hand-off to interprocedural
rules: it owns the parsed modules of one analysis run and lazily
builds the shared :class:`~repro.analysis.flow.callgraph.CallGraph`
and :class:`~repro.analysis.flow.taint.TaintAnalysis` exactly once,
however many rules consume them.  Rules that implement
``begin_project(project)`` receive it before any per-module ``check``
call; when a rule is exercised on a lone module outside an engine run
(unit tests), it builds a single-module context on the fly and the
same code paths apply, just without cross-module edges.
"""

from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.callgraph import CallGraph, FunctionNode
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.taint import TaintAnalysis

__all__ = ["CallGraph", "TaintAnalysis", "ProjectContext", "CFG",
           "build_cfg"]


class ProjectContext:
    """All modules of one run plus lazily-built shared analyses."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        self._ids = {id(m) for m in self.modules}
        self._callgraph: Optional[CallGraph] = None
        self._taint: Optional[TaintAnalysis] = None
        self._cfgs: Dict[int, CFG] = {}

    def __contains__(self, mod: ModuleInfo) -> bool:
        return id(mod) in self._ids

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph.build(self.modules)
        return self._callgraph

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self.callgraph)
        return self._taint

    def cfg_for(self, fn: FunctionNode) -> CFG:
        """The function's CFG, built once and shared across every rule
        in the run (MMU001 and STATE001 both walk the same bodies)."""
        key = id(fn.node)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = self._cfgs[key] = build_cfg(fn.node)
        return cfg
