"""Interprocedural dataflow infrastructure shared by rules.

:class:`ProjectContext` is the engine's hand-off to interprocedural
rules: it owns the parsed modules of one analysis run and lazily
builds the shared :class:`~repro.analysis.flow.callgraph.CallGraph`
and :class:`~repro.analysis.flow.taint.TaintAnalysis` exactly once,
however many rules consume them.  Rules that implement
``begin_project(project)`` receive it before any per-module ``check``
call; when a rule is exercised on a lone module outside an engine run
(unit tests), it builds a single-module context on the fly and the
same code paths apply, just without cross-module edges.
"""

from typing import List, Optional, Sequence

from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.taint import TaintAnalysis

__all__ = ["CallGraph", "TaintAnalysis", "ProjectContext"]


class ProjectContext:
    """All modules of one run plus lazily-built shared analyses."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        self._ids = {id(m) for m in self.modules}
        self._callgraph: Optional[CallGraph] = None
        self._taint: Optional[TaintAnalysis] = None

    def __contains__(self, mod: ModuleInfo) -> bool:
        return id(mod) in self._ids

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph.build(self.modules)
        return self._callgraph

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self.callgraph)
        return self._taint
