"""Interprocedural secret-flow (taint) analysis over the call graph.

Overshadow's guarantee is that key material and cloaked plaintext are
never *guest-visible*.  SEC001 checks that syntactically (no printing
of secret-named identifiers); this pass checks it as dataflow: a value
*derived from* a secret must not reach a guest-visible sink, no matter
how many assignments, helpers, containers or f-strings it transits.

Sources
  * results of ``decrypt_page`` / ``decrypt`` / ``open_message`` /
    ``keystream`` / ``derive_key`` calls (classified by call-site name,
    which is what keeps the ``decrypt = encrypt`` alias honest);
  * reads of the key-material attributes ``_enc_key`` / ``_mac_key`` /
    ``_master``;
  * secret-named parameters of functions in ``repro.core.crypto`` and
    ``repro.core.domains`` (``master``, ``plaintext``, ...).

Sanitizers (derived data becomes safe to expose)
  ``encrypt`` / ``encrypt_page`` / ``seal_message`` / ``page_mac`` /
  ``hash_image`` / ``macs_equal`` / ``verify_page``.

Sinks (guest-visible surfaces; enforced per package — ``SINK_POLICY``)
  * ``print`` / ``logging`` calls;
  * exception constructor arguments (messages propagate across the
    trust boundary when the violation is reported);
  * ``write_frame`` / ``PhysicalMemory.write`` of tainted data — a
    physical frame write outside the cloak engine's encrypt path;
  * ``return`` payloads of hypercall handlers (``_hc_*``);
  * ``write_block`` of tainted data (plaintext persisted unsealed).

The TCB (``repro.core``/``repro.hw``) is held to all five kinds.
``repro.guestos`` and ``repro.attacks`` hold secret-derived buffers
legitimately but may not re-expose them: log and persist sinks are
enforced there too.

Each function gets a *summary* — ``returns_tainted``, the params whose
taint flows to the return value, and ``params_that_reach_sinks`` — so
taint follows calls in both directions: a helper's return value stays
hot, and passing a secret into a leaking callee is flagged at the call
site.  Summaries are computed to a fixpoint over the whole graph.
"""

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.callgraph import CallGraph, FunctionNode, FuncKey

#: Taint token meaning "derived from an actual secret".
SECRET = -1
#: Other tokens are parameter indices of the function under analysis.
Token = int
Taint = FrozenSet[Token]

EMPTY: Taint = frozenset()
HOT: Taint = frozenset({SECRET})

#: Call-site names whose result is secret.
SOURCE_CALLS = {"decrypt_page", "decrypt", "open_message", "keystream",
                "derive_key"}

#: Call-site names whose result is safe regardless of argument taint.
SANITIZER_CALLS = {"encrypt", "encrypt_page", "seal_message", "page_mac",
                   "hash_image", "macs_equal", "verify_page"}

#: Builtins whose result reveals nothing about secret contents.
BENIGN_CALLS = {"len", "range", "isinstance", "min", "max", "enumerate",
                "bool", "callable", "hasattr", "id", "type"}

#: Attribute reads that *are* key material, wherever they occur.
SECRET_ATTRS = {"_enc_key", "_mac_key", "_master"}

#: Modules whose secret-named parameters are taint at entry.
SOURCE_PARAM_MODULES = {"repro.core.crypto", "repro.core.domains"}

#: Secret-named identifier segments (mirrors SEC001's vocabulary).
SECRET_WORDS = {"key", "keys", "keystream", "secret", "secrets", "master",
                "plaintext", "passphrase", "password"}

#: Guest-readable output calls.
LOG_SINKS = {"print", "debug", "info", "warning", "error", "critical",
             "exception", "log"}

#: Physical-frame writes by terminal name / by resolved callee.
FRAME_SINK_NAMES = {"write_frame"}
FRAME_SINK_CALLEES = {("repro.hw.phys", "PhysicalMemory.write")}

#: Persistence sinks (SEC003).
PERSIST_SINK_NAMES = {"write_block"}

# Sink kinds.
KIND_LOG = "log"
KIND_RAISE = "raise"
KIND_FRAME = "frame"
KIND_HC_RETURN = "hypercall-return"
KIND_PERSIST = "persist"

ALL_KINDS = frozenset({KIND_LOG, KIND_RAISE, KIND_FRAME, KIND_HC_RETURN,
                       KIND_PERSIST})

#: Per-package sink policy: which sink kinds are enforced in which
#: package (longest prefix wins).  The TCB and the simulated hardware
#: are held to every sink.  ``repro.guestos`` and ``repro.attacks``
#: legitimately *hold* secret-derived bytes — a debugger attack keeps
#: the buffer it captured, the swap daemon moves ciphertext it cannot
#: read — but they may not *re-expose* them: no guest-readable output
#: and no unsealed persistence.  Exception messages, frame writes and
#: hypercall returns are internal mechanism there, not exposure.
SINK_POLICY: Dict[str, FrozenSet[str]] = {
    "repro.core": ALL_KINDS,
    "repro.hw": ALL_KINDS,
    "repro.guestos": frozenset({KIND_LOG, KIND_PERSIST}),
    "repro.attacks": frozenset({KIND_LOG, KIND_PERSIST}),
}


def _secret_named(identifier: str) -> bool:
    return any(seg in SECRET_WORDS for seg in identifier.lower().split("_"))


def sink_kinds_for(module_name: str) -> FrozenSet[str]:
    """The sink kinds enforced in ``module_name`` (longest prefix wins)."""
    best, kinds = -1, frozenset()  # type: int, FrozenSet[str]
    for prefix, policy in SINK_POLICY.items():
        if module_name == prefix or module_name.startswith(prefix + "."):
            if len(prefix) > best:
                best, kinds = len(prefix), policy
    return kinds


def _checked(module_name: str) -> bool:
    return bool(sink_kinds_for(module_name))


class Summary:
    """What a caller needs to know about one function."""

    __slots__ = ("returns_tainted", "taints_return_from",
                 "params_that_reach_sinks")

    def __init__(self) -> None:
        self.returns_tainted = False
        #: Param indices whose taint flows to the return value.
        self.taints_return_from: Set[int] = set()
        #: Param index -> (sink kind, human description of the sink).
        self.params_that_reach_sinks: Dict[int, Tuple[str, str]] = {}

    def snapshot(self):
        return (self.returns_tainted, frozenset(self.taints_return_from),
                frozenset(self.params_that_reach_sinks.items()))


class TaintFinding:
    """One secret flow into a sink, anchored to a source location."""

    __slots__ = ("module", "node", "kind", "message")

    def __init__(self, module: ModuleInfo, node: ast.AST, kind: str,
                 message: str):
        self.module = module
        self.node = node
        self.kind = kind
        self.message = message


class TaintAnalysis:
    """Summaries + findings for every function in a call graph."""

    #: Fixpoint guard; summaries are monotone so this is generous.
    MAX_ROUNDS = 12

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.summaries: Dict[FuncKey, Summary] = {
            key: Summary() for key in graph.functions
        }
        self._fixpoint()
        self.findings: List[TaintFinding] = self._report()

    # -- fixpoint ---------------------------------------------------------------

    def _fixpoint(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fn in self.graph.functions.values():
                before = self.summaries[fn.key].snapshot()
                _FunctionPass(self, fn).run()
                if self.summaries[fn.key].snapshot() != before:
                    changed = True
            if not changed:
                return

    def _report(self) -> List[TaintFinding]:
        findings: List[TaintFinding] = []
        for fn in self.graph.functions.values():
            if not sink_kinds_for(fn.key[0]):
                continue
            findings.extend(_FunctionPass(self, fn, collect=True).run())
        return findings

    def findings_for(self, mod: ModuleInfo,
                     kinds: Sequence[str]) -> List[TaintFinding]:
        wanted = set(kinds)
        return [f for f in self.findings
                if f.module is mod and f.kind in wanted]


class _FunctionPass:
    """One local transfer pass over a function body.

    Runs the statement walk twice: the first sweep warms the variable
    environment (so loops and forward references converge), the second
    updates the summary and, when ``collect`` is set, emits findings.
    """

    def __init__(self, analysis: TaintAnalysis, fn: FunctionNode,
                 collect: bool = False):
        self.analysis = analysis
        self.graph = analysis.graph
        self.fn = fn
        self.summary = analysis.summaries[fn.key]
        self.collect = collect
        self.findings: List[TaintFinding] = []
        self._emitted: Set[Tuple[int, str]] = set()
        self.env: Dict[str, Taint] = {}
        self._recording = False
        self._policy = sink_kinds_for(fn.key[0])
        self._seed_params()

    # -- setup ------------------------------------------------------------------

    def _seed_params(self) -> None:
        source_params = self.fn.key[0] in SOURCE_PARAM_MODULES
        for index, name in enumerate(self.fn.params):
            taint: Set[Token] = {index}
            if source_params and _secret_named(name):
                taint.add(SECRET)
            self.env[name] = frozenset(taint)

    def run(self) -> List[TaintFinding]:
        body = self._body()
        self._recording = False
        for stmt in body:
            self._stmt(stmt)
        self._recording = True
        for stmt in body:
            self._stmt(stmt)
        return self.findings

    def _body(self) -> List[ast.stmt]:
        node = self.fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Module)):
            return list(node.body)
        return []

    # -- statements -------------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are their own graph nodes
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            extra = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = (
                    self.env.get(stmt.target.id, EMPTY) | extra)
            else:
                self._assign(stmt.target, extra, stmt.value, augment=True)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Raise):
            self._raise(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._eval(stmt.iter)
            self._assign(stmt.target, taint, stmt.iter)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            for sub in stmt.orelse + stmt.finalbody:
                self._stmt(sub)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Import/Pass/Break/Continue/Global/Nonlocal: no dataflow.

    def _assign(self, target: ast.expr, taint: Taint,
                value: Optional[ast.expr], augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = (self.env.get(target.id, EMPTY) | taint
                                   if augment else taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems: List[Optional[ast.expr]] = [None] * len(target.elts)
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                elems = list(value.elts)
            for sub, sub_value in zip(target.elts, elems):
                sub_taint = self._eval(sub_value) if sub_value is not None \
                    else taint
                self._assign(sub, sub_taint, sub_value)
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted is not None:
                self.env[dotted] = (self.env.get(dotted, EMPTY) | taint
                                    if augment else taint)
        elif isinstance(target, ast.Subscript):
            # container[i] = tainted -> the container is tainted.
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, EMPTY) | taint
            else:
                dotted = _dotted(base)
                if dotted is not None:
                    self.env[dotted] = self.env.get(dotted, EMPTY) | taint
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint, None)

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        taint = self._eval(stmt.value)
        if not self._recording:
            return
        if SECRET in taint:
            self.summary.returns_tainted = True
        for token in taint:
            if token != SECRET:
                self.summary.taints_return_from.add(token)
        if self.fn.name.startswith("_hc_") and KIND_HC_RETURN in self._policy:
            self._sink(stmt, taint, KIND_HC_RETURN,
                       "secret-derived value returned as a hypercall "
                       "payload")

    def _raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            return
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            taint = EMPTY
            for arg in list(exc.args) + [kw.value for kw in exc.keywords]:
                taint |= self._eval(arg)
            # Still classify the call itself (summaries, nested sinks).
            self._eval(exc)
        else:
            taint = self._eval(exc)
        if self._recording:
            self._sink(stmt, taint, KIND_RAISE,
                       "secret-derived value flows into an exception "
                       "message, which propagates across the trust "
                       "boundary when the violation is reported")

    # -- expressions ------------------------------------------------------------

    def _eval(self, expr: Optional[ast.expr]) -> Taint:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, EMPTY)
        if isinstance(expr, ast.Attribute):
            taint = self._eval(expr.value)
            if expr.attr in SECRET_ATTRS:
                taint |= HOT
            dotted = _dotted(expr)
            if dotted is not None and dotted in self.env:
                taint |= self.env[dotted]
            return taint
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.BoolOp):
            taint = EMPTY
            for value in expr.values:
                taint |= self._eval(value)
            return taint
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comp in expr.comparators:
                self._eval(comp)
            return EMPTY  # a boolean reveals no secret *contents*
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            taint = EMPTY
            for elt in expr.elts:
                taint |= self._eval(elt)
            return taint
        if isinstance(expr, ast.Dict):
            taint = EMPTY
            for key in expr.keys:
                if key is not None:
                    taint |= self._eval(key)
            for value in expr.values:
                taint |= self._eval(value)
            return taint
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            return self._eval(expr.value)
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part)
            return EMPTY
        if isinstance(expr, ast.JoinedStr):
            taint = EMPTY
            for value in expr.values:
                taint |= self._eval(value)
            return taint
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension(expr)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            self._eval(expr.value)
            return EMPTY  # values from outside the function are clean
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self._eval(expr.value)
            return EMPTY
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value)
            self._assign(expr.target, taint, expr.value)
            return taint
        return EMPTY  # Constant, Lambda, ...

    def _comprehension(self, expr) -> Taint:
        for gen in expr.generators:
            iter_taint = self._eval(gen.iter)
            self._assign(gen.target, iter_taint, None)
            for cond in gen.ifs:
                self._eval(cond)
        if isinstance(expr, ast.DictComp):
            return self._eval(expr.key) | self._eval(expr.value)
        return self._eval(expr.elt)

    # -- calls -------------------------------------------------------------------

    def _call(self, call: ast.Call) -> Taint:
        site = self.fn.site_for(call)
        name = site.name if site is not None else None
        receiver = EMPTY
        if isinstance(call.func, ast.Attribute):
            receiver = self._eval(call.func.value)
        arg_taints = [self._eval(a) for a in call.args]
        kw_taints = [(kw.arg, self._eval(kw.value)) for kw in call.keywords]
        all_args = arg_taints + [t for _, t in kw_taints]

        if name is not None:
            self._check_sink_call(call, name, site, all_args)

        if name in SANITIZER_CALLS:
            return EMPTY
        if name in SOURCE_CALLS:
            return HOT
        if site is not None and site.callee is not None:
            return self._apply_summary(call, site, arg_taints, kw_taints)
        if name in BENIGN_CALLS:
            return EMPTY
        # Unresolved call: conservatively propagate argument (and, for
        # method calls, receiver) taint into the result.
        taint = receiver
        for t in all_args:
            taint |= t
        return taint

    def _apply_summary(self, call: ast.Call, site, arg_taints, kw_taints) -> Taint:
        callee = self.graph.functions[site.callee]
        summary = self.analysis.summaries[site.callee]
        result: Set[Token] = set()
        if summary.returns_tainted:
            result.add(SECRET)

        def param_index(pos: Optional[int], kw: Optional[str]) -> Optional[int]:
            if kw is not None:
                return callee.params.index(kw) if kw in callee.params else None
            if site.is_constructor or (site.is_attr and callee.cls is not None):
                return callee.arg_to_param(pos)
            return pos

        pairs = [(i, None, t) for i, t in enumerate(arg_taints)]
        pairs += [(None, kw, t) for kw, t in kw_taints]
        for pos, kw, taint in pairs:
            if not taint:
                continue
            index = param_index(pos, kw)
            if index is None:
                continue
            if index in summary.taints_return_from:
                result |= taint
            reached = summary.params_that_reach_sinks.get(index)
            if reached is not None:
                kind, description = reached
                if SECRET in taint and self._recording:
                    self._sink(call, HOT, kind,
                               f"secret-derived value passed to "
                               f"'{callee.qualname}', where it reaches "
                               f"{description}")
                for token in taint:
                    if token != SECRET and self._recording:
                        self.summary.params_that_reach_sinks.setdefault(
                            token, (kind, f"{description} (via "
                                          f"'{callee.qualname}')"))
        return frozenset(result)

    def _check_sink_call(self, call: ast.Call, name: str, site,
                         all_args: List[Taint]) -> None:
        if not self._recording:
            return
        taint = EMPTY
        for t in all_args:
            taint |= t
        if name in LOG_SINKS:
            self._sink(call, taint, KIND_LOG,
                       f"secret-derived value reaches '{name}' — "
                       "guest-readable output")
        elif name in FRAME_SINK_NAMES or (
                site is not None and site.callee in FRAME_SINK_CALLEES):
            self._sink(call, taint, KIND_FRAME,
                       "secret-derived plaintext written to a "
                       "guest-visible physical frame outside the cloak "
                       "engine's encrypt path")
        elif name in PERSIST_SINK_NAMES:
            self._sink(call, taint, KIND_PERSIST,
                       f"secret-derived plaintext persisted via '{name}' "
                       "without seal_message/encrypt_page")

    def _sink(self, node: ast.AST, taint: Taint, kind: str,
              message: str) -> None:
        if not taint:
            return
        # Findings are filtered by the *anchoring* function's package
        # policy; summaries below stay unfiltered so callers in stricter
        # packages still see where their arguments end up.
        if SECRET in taint and self.collect and kind in self._policy:
            key = (id(node), kind)
            if key not in self._emitted:
                self._emitted.add(key)
                self.findings.append(
                    TaintFinding(self.fn.module, node, kind, message))
        if self._recording:
            for token in taint:
                if token != SECRET:
                    self.summary.params_that_reach_sinks.setdefault(
                        token, (kind, _SINK_DESCRIPTIONS[kind]))


_SINK_DESCRIPTIONS = {
    KIND_LOG: "a guest-readable log/print sink",
    KIND_RAISE: "an exception message crossing the trust boundary",
    KIND_FRAME: "a guest-visible physical frame write",
    KIND_HC_RETURN: "a hypercall return payload",
    KIND_PERSIST: "an unsealed disk write",
}


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
