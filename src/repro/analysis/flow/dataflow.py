"""Abstract interpretation over :mod:`repro.analysis.flow.cfg` graphs.

Three layers, each usable on its own:

* :func:`solve_forward` / :func:`solve_backward` — generic worklist
  fixpoint over a CFG, parameterized by init/transfer/join and (for
  the forward solver) an optional per-edge refinement hook that can
  also prune statically infeasible branches.
* :class:`ReachingDefinitions` and :class:`LiveVariables` — the two
  classic set problems, used by tests as executable documentation of
  the solver contract.
* :class:`AttrStateAnalysis` — a path-sensitive finite-lattice tracker
  for enum-valued attributes (``md.state``), the engine under
  STATE001.  It follows branch guards like ``if md.state is
  CloakState.FRESH:`` and predicate bindings like ``was_plaintext =
  md.state in (...)``, and havocs any object that escapes into a call.

Abstract values in :class:`AttrStateAnalysis` are *sets of possible
enum members*; the full set is ⊤ ("anything — trust the caller").
Soundness posture: joins go up, calls havoc, unknown receivers stay ⊤,
so the rule layered on top only reports transitions whose *source*
state it positively knows — no guessing, no false path explosions.
"""

import ast
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Set, Tuple)

from .cfg import CFG, Edge

# ----------------------------------------------------------------------
# generic solvers
# ----------------------------------------------------------------------

#: Sentinel returned by an edge_refine hook for a branch that cannot
#: be taken (e.g. ``if md.state is FRESH`` when the set excludes FRESH).
INFEASIBLE = object()


def solve_forward(cfg: CFG, init, transfer, join,
                  edge_refine: Optional[Callable] = None) -> Dict[int, object]:
    """Forward fixpoint: returns the in-state of every reachable block.

    ``init``        state at the entry block.
    ``transfer(block_index, stmt, state) -> state``  (stmt may be None
                    for synthetic blocks; must not mutate its input).
    ``join(a, b) -> state``  least upper bound.
    ``edge_refine(state, src_stmt, label) -> state | INFEASIBLE``
                    applied to the *out*-state along each labeled edge.
    """
    in_states: Dict[int, object] = {cfg.entry: init}
    work: List[int] = [cfg.entry]
    while work:
        index = work.pop()
        block = cfg.blocks[index]
        out = transfer(index, block.stmt, in_states[index])
        for succ, label in block.succs:
            edge_state = out
            if edge_refine is not None and label is not None:
                edge_state = edge_refine(out, block.stmt, label)
                if edge_state is INFEASIBLE:
                    continue
            if succ not in in_states:
                in_states[succ] = edge_state
                work.append(succ)
            else:
                merged = join(in_states[succ], edge_state)
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    work.append(succ)
    return in_states


def solve_backward(cfg: CFG, init, transfer, join) -> Dict[int, object]:
    """Backward fixpoint: returns the out-state of every block that
    reaches the exit.  ``transfer(block_index, stmt, state)`` maps a
    block's out-state to its in-state."""
    out_states: Dict[int, object] = {cfg.exit: init}
    work: List[int] = [cfg.exit]
    while work:
        index = work.pop()
        block = cfg.blocks[index]
        in_state = transfer(index, block.stmt, out_states[index])
        for pred, _label in block.preds:
            if pred not in out_states:
                out_states[pred] = in_state
                work.append(pred)
            else:
                merged = join(out_states[pred], in_state)
                if merged != out_states[pred]:
                    out_states[pred] = merged
                    work.append(pred)
    return out_states


# ----------------------------------------------------------------------
# classic set problems
# ----------------------------------------------------------------------

def _assigned_names(stmt: ast.stmt) -> Set[str]:
    names: Set[str] = set()
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Store):
                    names.add(node.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for node in ast.walk(stmt.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for node in ast.walk(item.optional_vars):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
    return names


def _loaded_names(stmt: ast.stmt) -> Set[str]:
    # For compound statements only the header expression belongs to the
    # block (bodies are separate blocks), so restrict the walk.
    if isinstance(stmt, ast.If):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, ast.While):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        roots = []
    else:
        roots = [stmt]
    names: Set[str] = set()
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return names


class ReachingDefinitions:
    """Which (name, block) definitions reach each block's entry."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        gen: Dict[int, FrozenSet[Tuple[str, int]]] = {}
        kill_names: Dict[int, Set[str]] = {}
        for index, stmt in cfg.statements():
            names = _assigned_names(stmt)
            gen[index] = frozenset((n, index) for n in names)
            kill_names[index] = names

        def transfer(index, stmt, state):
            if stmt is None:
                return state
            killed = kill_names.get(index, set())
            survivors = frozenset(d for d in state if d[0] not in killed)
            return survivors | gen.get(index, frozenset())

        self.in_states = solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b)

    def reaching(self, block_index: int) -> FrozenSet[Tuple[str, int]]:
        return self.in_states.get(block_index, frozenset())


class LiveVariables:
    """Which names are live (read before redefinition) after each block."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg

        def transfer(index, stmt, state):
            if stmt is None:
                return state
            return (state - frozenset(_assigned_names(stmt))) | frozenset(
                _loaded_names(stmt))

        self.out_states = solve_backward(
            cfg, frozenset(), transfer, lambda a, b: a | b)

    def live_out(self, block_index: int) -> FrozenSet[str]:
        return self.out_states.get(block_index, frozenset())


# ----------------------------------------------------------------------
# path-sensitive attribute-state tracking
# ----------------------------------------------------------------------

class StateLattice:
    """Description of the tracked protocol for :class:`AttrStateAnalysis`.

    ``attr``          the attribute carrying the state (``"state"``).
    ``enum_names``    names the enum class goes by (``{"CloakState"}``).
    ``values``        the full member-name set (⊤).
    ``constructors``  class name -> member name its ``__init__`` sets,
                      so ``md = PageMetadata(...)`` starts precise.
    """

    def __init__(self, attr: str, enum_names: Set[str],
                 values: Sequence[str],
                 constructors: Optional[Dict[str, str]] = None):
        self.attr = attr
        self.enum_names = frozenset(enum_names)
        self.top = frozenset(values)
        self.constructors = dict(constructors or {})

    def member_of(self, node: ast.AST) -> Optional[str]:
        """``CloakState.FRESH`` -> ``"FRESH"`` (else None)."""
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in self.enum_names
                and node.attr in self.top):
            return node.attr
        return None


class Transition:
    """One observed ``<obj>.state = <member>`` write."""

    __slots__ = ("node", "key", "prior", "target")

    def __init__(self, node: ast.stmt, key: str,
                 prior: FrozenSet[str], target: str):
        self.node = node
        self.key = key
        self.prior = prior
        self.target = target


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` -> "a.b.c" for pure Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _State:
    """Immutable-by-convention analysis state.

    ``attrs``  tracked-object key ("md", "self._meta") -> possible
               member set.  Key absent == ⊤ (untracked).
    ``preds``  local name -> (key, member set) for booleans bound from
               a membership test on that key's state.
    """

    __slots__ = ("attrs", "preds")

    def __init__(self, attrs: Dict[str, FrozenSet[str]],
                 preds: Dict[str, Tuple[str, FrozenSet[str]]]):
        self.attrs = attrs
        self.preds = preds

    def __eq__(self, other):
        return (isinstance(other, _State)
                and self.attrs == other.attrs and self.preds == other.preds)

    def __hash__(self):  # pragma: no cover - states are not dict keys
        return hash((frozenset(self.attrs.items()),
                     frozenset(self.preds.items())))

    def with_attr(self, key: str, members: FrozenSet[str]) -> "_State":
        attrs = dict(self.attrs)
        attrs[key] = members
        return _State(attrs, self.preds)

    def drop_attr(self, key: str) -> "_State":
        if key not in self.attrs:
            return self
        attrs = dict(self.attrs)
        del attrs[key]
        return _State(attrs, self.preds)

    def with_pred(self, name: str,
                  binding: Optional[Tuple[str, FrozenSet[str]]]) -> "_State":
        preds = dict(self.preds)
        if binding is None:
            preds.pop(name, None)
        else:
            preds[name] = binding
        return _State(self.attrs, preds)


class AttrStateAnalysis:
    """Run the tracker over one function; collect :class:`Transition`\\ s.

    The analysis is flow- and path-sensitive within the function and
    fully humble at its boundary: parameters enter at ⊤, any call that
    sees a tracked object havocs it, and only writes whose *prior* set
    is strictly below ⊤ are reported with a known source state.
    """

    def __init__(self, cfg: CFG, lattice: StateLattice):
        self.cfg = cfg
        self.lattice = lattice
        self.transitions: List[Transition] = []
        in_states = solve_forward(
            cfg, _State({}, {}), self._transfer, self._join,
            edge_refine=self._refine)
        # Reporting pass: re-apply transfers against the fixpoint
        # in-states so each write sees its final prior set.
        self._report = True
        for index, block in enumerate(cfg.blocks):
            if index in in_states and block.stmt is not None:
                self._transfer(index, block.stmt, in_states[index])

    _report = False

    # -- lattice ops -----------------------------------------------------------

    def _join(self, a: _State, b: _State) -> _State:
        attrs = {}
        for key in a.attrs.keys() & b.attrs.keys():
            attrs[key] = a.attrs[key] | b.attrs[key]
        preds = {name: binding for name, binding in a.preds.items()
                 if b.preds.get(name) == binding}
        return _State(attrs, preds)

    # -- transfer --------------------------------------------------------------

    def _transfer(self, index: int, stmt: Optional[ast.stmt],
                  state: _State) -> _State:
        if stmt is None:
            return state
        state = self._havoc_calls(stmt, state)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            return self._assign(stmt, stmt.targets[0], stmt.value, state)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return self._assign(stmt, stmt.target, stmt.value, state)
        if isinstance(stmt, ast.AugAssign):
            key = _dotted(stmt.target)
            if key is not None:
                state = state.drop_attr(key)
            return state
        if isinstance(stmt, (ast.Delete,)):
            for target in stmt.targets:
                key = _dotted(target)
                if key is not None:
                    state = state.drop_attr(key)
        return state

    def _assign(self, stmt: ast.stmt, target: ast.AST, value: ast.AST,
                state: _State) -> _State:
        lattice = self.lattice
        # <obj>.<attr> = ...
        if (isinstance(target, ast.Attribute)
                and target.attr == lattice.attr):
            key = _dotted(target.value)
            if key is None:
                return state
            members = self._value_members(value, state)
            if members is None:
                return state.drop_attr(key)
            if (self._report and len(members) == 1
                    and key in state.attrs):
                prior = state.attrs[key]
                if prior != lattice.top:
                    self.transitions.append(Transition(
                        stmt, key, prior, next(iter(members))))
            return state.with_attr(key, members)
        # name = ...
        if isinstance(target, ast.Name):
            name = target.id
            state = state.with_pred(name, None)
            # Constructor with a known postcondition tracks the object.
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in lattice.constructors):
                return _State(
                    {**{k: v for k, v in state.attrs.items() if k != name},
                     name: frozenset({lattice.constructors[value.func.id]})},
                    state.preds)
            # Predicate binding: flag = md.state in (...)
            binding = self._membership_test(value, state)
            if binding is not None:
                return state.with_pred(name, binding)
            # Any other rebind of the name unmaps it.
            return state.drop_attr(name)
        # Tuple targets, subscripts: drop anything they might clobber.
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                state = state.drop_attr(node.id).with_pred(node.id, None)
        return state

    def _value_members(self, value: ast.AST,
                       state: _State) -> Optional[FrozenSet[str]]:
        member = self.lattice.member_of(value)
        if member is not None:
            return frozenset({member})
        if isinstance(value, ast.IfExp):
            left = self._value_members(value.body, state)
            right = self._value_members(value.orelse, state)
            if left is not None and right is not None:
                return left | right
        # <other>.state copies the source's set when tracked.
        if (isinstance(value, ast.Attribute)
                and value.attr == self.lattice.attr):
            key = _dotted(value.value)
            if key is not None and key in state.attrs:
                return state.attrs[key]
        return None

    def _havoc_calls(self, stmt: ast.stmt, state: _State) -> _State:
        """Any tracked object reaching a call escapes to ⊤ — the callee
        may transition it arbitrarily."""
        tracked = state.attrs
        if not tracked:
            return state
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            exposed: Set[str] = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                key = _dotted(arg)
                if key is not None and key in tracked:
                    exposed.add(key)
            # Method call on the tracked object itself: md.foo().
            if isinstance(node.func, ast.Attribute):
                key = _dotted(node.func.value)
                if key is not None:
                    for candidate in tracked:
                        if candidate == key or candidate.startswith(key + "."):
                            exposed.add(candidate)
            for key in exposed:
                state = state.drop_attr(key)
            tracked = state.attrs
            if not tracked:
                break
        return state

    # -- branch refinement -----------------------------------------------------

    def _membership_test(self, test: ast.AST, state: _State
                         ) -> Optional[Tuple[str, FrozenSet[str]]]:
        """(key, member set meaning "test is true"), or None."""
        lattice = self.lattice
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            # md.state is/== CloakState.X  |  md.state in (X, Y)
            if (isinstance(left, ast.Attribute)
                    and left.attr == lattice.attr):
                key = _dotted(left.value)
                if key is None:
                    return None
                if isinstance(op, (ast.Is, ast.Eq)):
                    member = lattice.member_of(right)
                    if member is not None:
                        return key, frozenset({member})
                if isinstance(op, (ast.IsNot, ast.NotEq)):
                    member = lattice.member_of(right)
                    if member is not None:
                        return key, lattice.top - {member}
                if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                        right, (ast.Tuple, ast.List, ast.Set)):
                    members = set()
                    for element in right.elts:
                        member = lattice.member_of(element)
                        if member is None:
                            return None
                        members.add(member)
                    if isinstance(op, ast.In):
                        return key, frozenset(members)
                    return key, lattice.top - members
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._membership_test(test.operand, state)
            if inner is not None:
                key, members = inner
                return key, lattice.top - members
            return None
        if isinstance(test, ast.Name) and test.id in state.preds:
            return state.preds[test.id]
        return None

    def _refine(self, state: _State, stmt: Optional[ast.stmt],
                label: Optional[str]):
        if stmt is None or label not in ("true", "false"):
            return state
        if isinstance(stmt, (ast.If, ast.While)):
            test = stmt.test
        else:
            return state
        return self._refine_test(state, test, label == "true")

    def _refine_test(self, state: _State, test: ast.AST, truth: bool):
        if isinstance(test, ast.BoolOp):
            # `a and b` true-branch: both hold.  False-branch of `or`:
            # all disjuncts false.  The other sides are unrefined.
            if isinstance(test.op, ast.And) and truth:
                for value in test.values:
                    state = self._refine_test(state, value, True)
                    if state is INFEASIBLE:
                        return INFEASIBLE
                return state
            if isinstance(test.op, ast.Or) and not truth:
                for value in test.values:
                    state = self._refine_test(state, value, False)
                    if state is INFEASIBLE:
                        return INFEASIBLE
                return state
            return state
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine_test(state, test.operand, not truth)
        binding = self._membership_test(test, state)
        if binding is None:
            return state
        key, members = binding
        if not truth:
            members = self.lattice.top - members
        known = state.attrs.get(key, self.lattice.top)
        refined = known & members
        if not refined:
            return INFEASIBLE
        return state.with_attr(key, refined)
