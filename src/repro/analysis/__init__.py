"""Static invariant checker for the Overshadow reproduction.

The security argument of this codebase is *structural*: untrusted guest
code may only reach cloaked resources through the MMU/hypercall
protocol, all performance numbers are deterministic virtual-cycle
counts, and every touch of a costed primitive must land on the
:class:`~repro.hw.cycles.CycleAccount` ledger.  None of that is
enforced by Python itself — a single stray import or ``time.time()``
call would quietly invalidate the reproduction.

This package makes those invariants checkable at lint time.  It is
deliberately self-contained (stdlib ``ast`` + ``pathlib`` only) so the
checker itself adds no dependencies and cannot be broken by the code it
checks.  See ``docs/ANALYSIS.md`` for the rule catalogue and
``python -m repro.analysis --help`` for the CLI.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import Analyzer, Finding, ModuleInfo, Report
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleInfo",
    "Report",
    "get_rules",
]
