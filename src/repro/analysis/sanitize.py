"""``--sanitize-run``: dynamic cross-check of the static verdicts.

Static post-dominance, lattice tracking and lockset analysis prove the
*code* cannot reach a bad state; this module proves the *machine* does
not, on a real workload, and that the two verdicts agree.  It replays
a benchmark workload with an obs-bus sink attached and asserts, event
by event:

* **cloak-protocol conformance** (the dynamic STATE001): every
  transition probe (``cloak.zero_fill``/``decrypt``/``encrypt``/
  ``ct_restore``/``dirty_upgrade``) must arrive while the page is in a
  state the transition is legal from.  Pages are tracked per
  (owner, vpn); first sight is UNKNOWN and accepted (the sink may
  attach mid-lifecycle); ``cloak.discard`` ends a lifecycle.
* **TLB/shadow coherence** (the dynamic MMU001): after a frame's cloak
  state changes while mappings to it exist, no new mapping may be
  installed (``vmm.shadow_fill``) until the VMM reports the frame's
  mappings dropped (``vmm.coherence``).  Un-flushed frames remaining
  at workload end are violations too.
* **runtime locksets** (the dynamic RACE001, Eraser's algorithm): the
  ``sync.acquire``/``sync.release``/``sync.access`` probes rebuild
  each guarded state's *candidate lockset* — the intersection of the
  locks held at every runtime access.  A state whose declared
  ``GUARDED_BY`` lock drops out of its candidate set, or a runtime
  access to state with no declaration at all, is a violation: the
  dynamic run observed what the static lockset rule should have
  rejected.

Probes never charge cycles, so the replayed workload's virtual-cycle
total must be bit-identical to the committed ``BENCH_wallclock.json``
figure — the run fails if attaching the sanitizer moved a single
cycle.
"""

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: Modules whose ``GUARDED_BY`` declarations seed the lockset checker.
#: Import is safe: these are simulator modules the workload imports
#: anyway, never analysed *target* code.
GUARDED_MODULES = ("repro.core.crypto",)

#: Transition probe -> states it may legally arrive from.
EXPECT: Dict[str, frozenset] = {
    "cloak.zero_fill": frozenset({"FRESH"}),
    "cloak.decrypt": frozenset({"ENCRYPTED"}),
    "cloak.encrypt": frozenset({"PLAINTEXT_CLEAN", "PLAINTEXT_DIRTY"}),
    "cloak.ct_restore": frozenset({"PLAINTEXT_CLEAN"}),
    "cloak.dirty_upgrade": frozenset({"PLAINTEXT_CLEAN",
                                      "PLAINTEXT_DIRTY"}),
}

#: Transition probe -> state the page is in afterwards.
RESULT: Dict[str, str] = {
    "cloak.zero_fill": "PLAINTEXT_DIRTY",
    "cloak.decrypt": "PLAINTEXT_CLEAN",
    "cloak.encrypt": "ENCRYPTED",
    "cloak.ct_restore": "ENCRYPTED",
    "cloak.dirty_upgrade": "PLAINTEXT_DIRTY",
}


class TransitionChecker:
    """Per-(owner, vpn) replay of the cloak-state machine."""

    def __init__(self):
        self.states: Dict[Tuple[int, int], str] = {}
        self.violations: List[str] = []
        self.events = 0

    def on_transition(self, name: str, owner: int, vpn: int) -> None:
        self.events += 1
        key = (owner, vpn)
        prior = self.states.get(key)
        if prior is not None and prior not in EXPECT[name]:
            self.violations.append(
                f"{name} on page owner={owner} vpn={vpn:#x} arrived in "
                f"state {prior}; legal from "
                + "/".join(sorted(EXPECT[name])))
        self.states[key] = RESULT[name]

    def on_discard(self, owner: int, vpn: int) -> None:
        self.events += 1
        self.states.pop((owner, vpn), None)


class CoherenceChecker:
    """Frames whose cloak state changed must shed mappings before any
    new mapping is installed over them."""

    def __init__(self):
        #: gpfn -> mappings installed and not yet dropped
        self.mappings: Dict[int, Set[Tuple[int, int, int]]] = {}
        #: frames with a cloak change not yet followed by vmm.coherence
        self.pending: Set[int] = set()
        self.violations: List[str] = []
        self.events = 0

    def on_cloak_change(self, name: str, gpfn: int) -> None:
        self.events += 1
        if self.mappings.get(gpfn):
            self.pending.add(gpfn)

    def on_shadow_fill(self, asid: int, view: int, vpn: int,
                       gpfn: int) -> None:
        self.events += 1
        if gpfn in self.pending:
            self.violations.append(
                f"shadow fill (asid={asid} view={view} vpn={vpn:#x}) over "
                f"frame {gpfn} whose cloak state changed before its "
                "mappings were invalidated")
        self.mappings.setdefault(gpfn, set()).add((asid, view, vpn))

    def on_coherence(self, gpfn: int, dropped: int) -> None:
        self.events += 1
        self.pending.discard(gpfn)
        self.mappings.pop(gpfn, None)

    def on_tlb_invalidate(self, asid: int, vpn: int, dropped: int) -> None:
        # invlpg path: the guest edited a PTE; derived mappings of that
        # vpn are gone, so they can no longer go stale.
        self.events += 1
        for gpfn, maps in self.mappings.items():
            maps -= {m for m in maps
                     if m[2] == vpn and (asid == -1 or m[0] == asid)}

    def finish(self) -> None:
        for gpfn in sorted(self.pending):
            self.violations.append(
                f"workload ended with frame {gpfn} still un-flushed after "
                "a cloak-state change (mappings never invalidated)")


class LocksetChecker:
    """Eraser's lockset algorithm over the ``sync.*`` probes.

    ``candidates[state]`` starts as the lockset held at the state's
    first runtime access and is intersected at every later one; locks
    are tracked per cpu, so the checker stays correct when a second
    vCPU starts emitting.
    """

    def __init__(self):
        self.held: Dict[int, Set[str]] = {}
        self.candidates: Dict[str, Set[str]] = {}
        self.accesses: Dict[str, int] = {}
        self.violations: List[str] = []
        self.events = 0

    def on_acquire(self, lock: str, cpu: int) -> None:
        self.events += 1
        self.held.setdefault(cpu, set()).add(lock)

    def on_release(self, lock: str, cpu: int) -> None:
        self.events += 1
        held = self.held.setdefault(cpu, set())
        if lock not in held:
            self.violations.append(
                f"cpu {cpu} released `{lock}` without holding it")
        held.discard(lock)

    def on_access(self, state: str, cpu: int) -> None:
        self.events += 1
        held = frozenset(self.held.get(cpu, ()))
        self.accesses[state] = self.accesses.get(state, 0) + 1
        if state in self.candidates:
            self.candidates[state] &= held
        else:
            self.candidates[state] = set(held)

    def finish(self, declared: Dict[str, str]) -> None:
        """Compare runtime candidate locksets with the static
        ``GUARDED_BY`` declarations."""
        for state in sorted(self.accesses):
            lock = declared.get(state)
            if lock is None:
                self.violations.append(
                    f"runtime access to `{state}` which declares no "
                    "GUARDED_BY lock")
            elif lock not in self.candidates[state]:
                self.violations.append(
                    f"`{state}` declares guard `{lock}` but its runtime "
                    "candidate lockset is {"
                    + ", ".join(sorted(self.candidates[state]))
                    + "} — some access ran without the declared lock")


def declared_locksets() -> Dict[str, str]:
    """Static ``GUARDED_BY`` declarations in VLock-name terms.

    Maps the ``sync.access`` state key (``module:attr``) to the
    ``VLock.name`` the ``sync.acquire`` probe will report, by reading
    each guarded module's live ``GUARDED_BY`` dict.
    """
    import importlib

    declared: Dict[str, str] = {}
    for module_name in GUARDED_MODULES:
        module = importlib.import_module(module_name)
        for state, lock_attr in getattr(module, "GUARDED_BY", {}).items():
            declared[f"{module_name}:{state}"] = getattr(
                module, lock_attr).name
    return declared


class SanitizerSink:
    """Obs-bus sink fanning events into the three checkers."""

    def __init__(self):
        self.transitions = TransitionChecker()
        self.coherence = CoherenceChecker()
        self.lockset = LocksetChecker()

    def on_event(self, name: str, cycle: int, args: tuple) -> None:
        if name in EXPECT:
            # args: (owner, vpn[, gpfn, cost]) per the PROBES catalog.
            self.transitions.on_transition(name, args[0], args[1])
            if len(args) >= 3:
                self.coherence.on_cloak_change(name, args[2])
        elif name == "cloak.discard":
            self.transitions.on_discard(args[0], args[1])
        elif name == "vmm.shadow_fill":
            self.coherence.on_shadow_fill(*args)
        elif name == "vmm.coherence":
            self.coherence.on_coherence(*args)
        elif name == "tlb.invalidate":
            self.coherence.on_tlb_invalidate(*args)
        elif name == "sync.acquire":
            self.lockset.on_acquire(*args)
        elif name == "sync.release":
            self.lockset.on_release(*args)
        elif name == "sync.access":
            self.lockset.on_access(*args)

    @property
    def violations(self) -> List[str]:
        return (self.transitions.violations + self.coherence.violations
                + self.lockset.violations)

    @property
    def events(self) -> int:
        return (self.transitions.events + self.coherence.events
                + self.lockset.events)


def replay_mb_suite(sink: SanitizerSink) -> int:
    """Run the mb-suite workload with ``sink`` attached; returns the
    summed virtual-cycle total (must match BENCH_wallclock.json)."""
    from repro.apps.microbench import MICRO_SUITE
    from repro.bench.runner import fresh_machine, measure_program
    from repro.obs import bus

    machine = fresh_machine(cloaked=True)
    bus.attach(sink, machine.cycles)
    try:
        cycles = 0
        for program_cls in MICRO_SUITE:
            result = measure_program(machine, program_cls.name, ())
            cycles += result.cycles_total
    finally:
        bus.detach(sink)
    sink.coherence.finish()
    sink.lockset.finish(declared_locksets())
    return cycles


def committed_cycles(root: Path, workload: str) -> Optional[int]:
    path = root / "BENCH_wallclock.json"
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    entry = report.get("workloads", {}).get(workload)
    return entry.get("cycles") if isinstance(entry, dict) else None


def sanitize_run(workload: str, out) -> int:
    """Entry point for ``python -m repro.analysis --sanitize-run``.

    Runs the static STATE001/MMU001/RACE001/LOCK001/ATOM001 verdict
    and the dynamic replay, prints the differential comparison, and
    returns an exit code: 0 = both clean and cycles match, 1 = any
    disagreement/violation, 2 = usage error (unknown workload).
    """
    from repro.analysis.baseline import Baseline
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import Analyzer
    from repro.analysis.rules import get_rules

    if workload != "mb-suite":
        print(f"unknown sanitize workload: {workload} "
              "(available: mb-suite)", file=out)
        return 2

    static_rules = ["STATE001", "MMU001", "RACE001", "LOCK001", "ATOM001"]
    config = AnalysisConfig.load()
    baseline = Baseline.load(config.resolved_baseline())
    report = Analyzer(get_rules(static_rules)).run(
        config.resolved_paths(), baseline=baseline, root=config.root)
    static_clean = not report.findings
    print(f"static : {'/'.join(static_rules)} over "
          f"{report.files_checked} files -> "
          + ("clean" if static_clean
             else f"{len(report.findings)} finding(s)"), file=out)
    for finding in report.findings:
        print(f"  {finding.render()}", file=out)

    sink = SanitizerSink()
    cycles = replay_mb_suite(sink)
    dynamic_clean = not sink.violations
    print(f"dynamic: {workload} replay, {sink.events} events -> "
          + ("clean" if dynamic_clean
             else f"{len(sink.violations)} violation(s)"), file=out)
    for violation in sink.violations:
        print(f"  {violation}", file=out)
    locksets = sink.lockset
    print(f"lockset: {len(locksets.accesses)} guarded state(s), "
          f"{sum(locksets.accesses.values())} access(es), "
          f"{locksets.events} sync event(s) — candidate locksets "
          + ("match GUARDED_BY" if not locksets.violations
             else "DISAGREE with GUARDED_BY"), file=out)

    expected = committed_cycles(config.root or Path.cwd(), workload)
    cycles_ok = expected is None or cycles == expected
    if expected is None:
        print(f"cycles : {cycles} (no committed BENCH_wallclock.json "
              "to compare)", file=out)
    elif cycles_ok:
        print(f"cycles : {cycles} == committed {expected} "
              "(sanitizer charged nothing)", file=out)
    else:
        print(f"cycles : {cycles} != committed {expected} — the "
              "sanitizer perturbed the run", file=out)

    agree = static_clean == dynamic_clean
    print("verdict: static and dynamic "
          + ("AGREE" if agree else "DISAGREE")
          + (" (both clean)" if agree and static_clean else ""), file=out)
    return 0 if (static_clean and dynamic_clean and cycles_ok) else 1
