"""Consistent-hash ring: key -> shard routing with minimal remapping.

Each shard owns ``vnodes`` points on a 64-bit hash circle; a key is
routed to the shard owning the first point at or after the key's own
hash (wrapping).  Because the points of shard *s* depend only on *s*,
adding or removing one shard moves only the keys whose successor point
belonged to that shard — on average ``1/N`` of the population on add,
and exactly the departed shard's keys on remove.  The property tests in
``tests/serve/test_ring.py`` pin both guarantees.

Everything is derived from SHA-256 over stable strings, so routing is
deterministic across processes and hosts (no ``hash()`` — Python's
string hashing is salted per process, which would silently break the
cluster's cross-mode determinism guarantee).
"""

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Default virtual nodes per shard; enough for <±35% spread at N=8.
DEFAULT_VNODES = 192


def _point(label: str) -> int:
    """A stable 64-bit position on the circle for ``label``."""
    digest = hashlib.sha256(label.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Iterable[int], vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self._vnodes = vnodes
        self._points: List[Tuple[int, int]] = []  # (position, shard)
        self._keys: List[int] = []                # positions, kept sorted
        self._members: Dict[int, bool] = {}
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------

    @property
    def shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def add(self, shard: int) -> None:
        """Add ``shard``; remaps ~1/N of the key space onto it."""
        if shard in self._members:
            raise ValueError(f"shard {shard} is already on the ring")
        self._members[shard] = True
        for position in self._positions(shard):
            index = bisect.bisect(self._keys, position)
            self._keys.insert(index, position)
            self._points.insert(index, (position, shard))

    def remove(self, shard: int) -> None:
        """Remove ``shard``; only its own keys move (to their successor)."""
        if shard not in self._members:
            raise ValueError(f"shard {shard} is not on the ring")
        del self._members[shard]
        keep = [(pos, s) for pos, s in self._points if s != shard]
        self._points = keep
        self._keys = [pos for pos, _ in keep]

    def _positions(self, shard: int) -> List[int]:
        return [_point(f"shard:{shard}:vnode:{v}")
                for v in range(self._vnodes)]

    # -- routing -----------------------------------------------------------

    def lookup(self, key: str) -> int:
        """The shard owning ``key``."""
        if not self._points:
            raise LookupError("ring is empty")
        index = bisect.bisect(self._keys, _point(f"key:{key}"))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._points[index][1]

    def spread(self, keys: Iterable[str]) -> Dict[int, int]:
        """How many of ``keys`` each shard owns (all members included)."""
        counts = {shard: 0 for shard in self._members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __repr__(self) -> str:
        return (f"HashRing(shards={list(self.shards)}, "
                f"vnodes={self._vnodes})")
