"""Sharded cluster serving: N machines, one snapshot, one report.

A *cluster run* routes one open-loop schedule
(:mod:`repro.serve.loadgen`) across N independent
:class:`repro.machine.Machine` shards with a consistent-hash ring
(:mod:`repro.serve.ring`), runs every shard, and merges the per-shard
results — samples, SLO accounting, and ``repro.obs`` metrics — into a
single deterministic cluster report.

Execution modes, byte-identical by construction:

* ``inline`` — every shard runs sequentially in the calling process;
* multiprocess — one **forked** worker per shard (bounded by
  ``workers`` concurrent processes), each restored from one shared
  COW snapshot the parent captured and published *before* forking
  (:func:`repro.hw.snapshot.publish` — snapshots cannot be pickled,
  but they ride fork inheritance for free).

Byte-identity holds because each shard is a closed world: its machine,
sub-schedule, and virtual clock are independent of every other shard,
so per-shard results do not depend on scheduling, worker count, or
completion order; the merge sorts by shard id and sums commutative
integers.  Nothing in the report derives from the host (no wall clock,
no pids, no worker topology).

Failure model: a worker that dies (crash, kill, or the test harness's
``kill_shards`` injection) simply never reports.  The parent notices,
marks the shard dead, removes it from the ring, re-routes the dead
shard's requests to their new owners (a **rescue pass** on fresh
machines), and emits a completed report with ``degraded: true`` — a
dead worker degrades the answer, it never hangs the run.
"""

import json
import multiprocessing
import os
import queue as queue_mod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw import snapshot as snapshot_mod
from repro.machine import Machine
from repro.obs.metrics import merge_snapshots
from repro.serve.loadgen import (
    LoadSpec,
    Row,
    build_schedule,
    drive_open_loop,
    percentile,
    server_class,
)
from repro.serve.ring import DEFAULT_VNODES, HashRing

#: Worker poll interval (seconds) while awaiting results.
_POLL = 0.05


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster run, fully determined by its fields."""

    spec: LoadSpec = field(default_factory=LoadSpec)
    shards: int = 4
    cloaked: bool = False
    vnodes: int = DEFAULT_VNODES
    #: Max concurrent worker processes (0 = one per shard).
    workers: int = 0
    #: Run every shard in this process (no forking).
    inline: bool = False
    #: Shards whose worker dies before serving (failure injection).
    kill_shards: Tuple[int, ...] = ()
    #: Parent-side watchdog: give up on unresponsive workers after
    #: this many wall seconds (counted in poll ticks, never read from
    #: a clock) and mark their shards dead.
    wall_budget: float = 120.0
    attach_metrics: bool = True

    def validate(self) -> None:
        self.spec.validate()
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        for shard in self.kill_shards:
            if not 0 <= shard < self.shards:
                raise ValueError(f"kill_shards entry {shard} out of range")


def snapshot_key(spec: LoadSpec, cloaked: bool) -> str:
    return f"serve:{spec.app}:{int(cloaked)}"


def plan_shards(config: ClusterConfig) -> Tuple[HashRing,
                                                Dict[int, List[Row]]]:
    """Route the schedule's rows to shards by key.

    Every shard appears in the result (possibly with no rows); each
    shard's sub-schedule keeps the global arrival offsets, so offered
    load per shard reflects the routing, not a renumbering.
    """
    ring = HashRing(range(config.shards), config.vnodes)
    per_shard: Dict[int, List[Row]] = {s: [] for s in range(config.shards)}
    for row in build_schedule(config.spec):
        per_shard[ring.lookup(row[3])].append(row)
    return ring, per_shard


# ---------------------------------------------------------------------------
# one shard
# ---------------------------------------------------------------------------

def _boot_machine(spec: LoadSpec, cloaked: bool) -> Machine:
    machine = Machine.build()
    machine.register(server_class(spec.app), cloaked=cloaked)
    return machine


def _shard_machine(spec: LoadSpec, cloaked: bool) -> Machine:
    """A machine for one shard run: snapshot restore when available
    (published by the parent, fork-inherited in workers), fresh boot
    otherwise.  Both paths are cycle-identical by the snapshot
    equivalence guarantee, so the report does not depend on which one
    ran."""
    if snapshot_mod.snapshots_enabled():
        snap = snapshot_mod.published(snapshot_key(spec, cloaked))
        if snap is not None:
            return Machine.from_snapshot(snap)
    return _boot_machine(spec, cloaked)


def run_shard(config: ClusterConfig, shard: int, rows: List[Row]) -> Dict:
    """Run one shard's sub-schedule on its own machine."""
    if not rows:
        return {
            "app": config.spec.app, "requests": 0, "completed": 0,
            "errors": 0, "slo_misses": 0, "deadline": config.spec.deadline,
            "latency": {"p50": 0, "p95": 0, "p99": 0, "p999": 0, "max": 0},
            "latencies": [], "offered_per_mcycle": 0.0,
            "achieved_per_mcycle": 0.0, "cycles": 0, "cycle_hash": "empty",
            "server_exit": 0, "violations": 0,
        }
    machine = _shard_machine(config.spec, config.cloaked)
    return drive_open_loop(machine, config.spec, rows,
                           cloaked=config.cloaked,
                           attach_metrics=config.attach_metrics)


def publish_snapshot(config: ClusterConfig) -> bool:
    """Boot + capture + publish the shared shard snapshot (parent side,
    before any fork).  Returns False when snapshots are disabled."""
    if not snapshot_mod.snapshots_enabled():
        return False
    key = snapshot_key(config.spec, config.cloaked)
    if snapshot_mod.published(key) is None:
        machine = _boot_machine(config.spec, config.cloaked)
        snapshot_mod.publish(key, machine.snapshot())
    return True


# ---------------------------------------------------------------------------
# worker protocol
# ---------------------------------------------------------------------------

def _worker_main(result_queue, config: ClusterConfig, shard: int,
                 rows: List[Row]) -> None:
    if shard in config.kill_shards:
        # Failure injection: die the way a crashed worker dies — no
        # result, no cleanup, nonzero exit.  The parent must cope.
        os._exit(17)
    result_queue.put((shard, run_shard(config, shard, rows)))


def _run_forked(config: ClusterConfig,
                per_shard: Dict[int, List[Row]]) -> Dict[int, Dict]:
    """Run shards in forked workers; missing results mean dead shards."""
    ctx = multiprocessing.get_context("fork")
    results: Dict[int, Dict] = {}
    width = config.workers if config.workers > 0 else config.shards
    shard_ids = sorted(per_shard)
    budget_polls = max(1, int(config.wall_budget / _POLL))
    for start in range(0, len(shard_ids), width):
        wave = shard_ids[start:start + width]
        # A fresh queue per wave: terminating a worker can leave the
        # queue's shared write lock held (the feeder thread dies
        # mid-handshake), which would silently swallow every later
        # wave's results.  A poisoned queue is discarded with its wave.
        result_queue = ctx.Queue()
        procs = {
            shard: ctx.Process(
                target=_worker_main,
                args=(result_queue, config, shard, per_shard[shard]),
            )
            for shard in wave
        }
        for proc in procs.values():
            proc.start()
        expected = len(procs)
        got = 0
        for _tick in range(budget_polls):
            if got == expected:
                break
            try:
                shard, result = result_queue.get(timeout=_POLL)
            except queue_mod.Empty:
                if not any(p.is_alive() for p in procs.values()):
                    break
                continue
            results[shard] = result
            got += 1
        # Late stragglers: one last non-blocking drain (a worker may
        # have queued its result in the instant before we gave up).
        while True:
            try:
                shard, result = result_queue.get_nowait()
            except queue_mod.Empty:
                break
            results[shard] = result
        for proc in procs.values():
            # Workers that delivered exit on their own — give them a
            # grace period so terminate() is reserved for the truly
            # hung (it is never safe for a worker mid-queue-flush).
            proc.join(timeout=4 * _POLL)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        result_queue.close()
        result_queue.join_thread()
    return results


def _run_inline(config: ClusterConfig,
                per_shard: Dict[int, List[Row]]) -> Dict[int, Dict]:
    results: Dict[int, Dict] = {}
    for shard in sorted(per_shard):
        if shard in config.kill_shards:
            continue  # same observable outcome as a dead worker
        results[shard] = run_shard(config, shard, per_shard[shard])
    return results


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------

def _public_entry(result: Dict) -> Dict:
    """A shard result as the report carries it (bulk arrays dropped)."""
    entry = {key: value for key, value in result.items()
             if key not in ("latencies", "metrics")}
    return entry


def merge_report(config: ClusterConfig, results: Dict[int, Dict],
                 rescue: Dict[int, Dict], dead: List[int],
                 rerouted: int) -> Dict:
    """The deterministic cluster-wide report.

    Input dict ordering does not matter: shards are emitted sorted,
    and every cluster-level figure is a sum or an order-insensitive
    percentile over the pooled samples.
    """
    spec = config.spec
    all_runs = list(results.values()) + list(rescue.values())
    latencies = sorted(lat for run in all_runs for lat in run["latencies"])
    requests = sum(run["requests"] for run in all_runs)
    completed = sum(run["completed"] for run in all_runs)
    achieved = round(sum(run["achieved_per_mcycle"] for run in all_runs), 4)
    live = config.shards - len(dead)
    report = {
        "schema": 1,
        "app": spec.app,
        "cloaked": config.cloaked,
        "arrival": spec.arrival,
        "seed": spec.seed,
        "shards": config.shards,
        "vnodes": config.vnodes,
        "degraded": bool(dead),
        "dead_shards": sorted(dead),
        "rerouted_requests": rerouted,
        "per_shard": {str(shard): _public_entry(results[shard])
                      for shard in sorted(results)},
        "rescue": {str(shard): _public_entry(rescue[shard])
                   for shard in sorted(rescue)},
        "cluster": {
            "requests": requests,
            "completed": completed,
            "errors": sum(run["errors"] for run in all_runs),
            "slo_misses": sum(run["slo_misses"] for run in all_runs),
            "latency": {
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
                "p999": percentile(latencies, 99.9),
                "max": latencies[-1] if latencies else 0,
            },
            "achieved_per_mcycle": achieved,
            "capacity_per_shard": round(achieved / max(1, live), 4),
        },
    }
    if config.attach_metrics:
        report["metrics"] = merge_snapshots(
            [run["metrics"] for run in all_runs if "metrics" in run])
    return report


def report_json(report: Dict) -> str:
    """Canonical serialization: the byte-identity surface."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_cluster(config: ClusterConfig) -> Dict:
    """Route, run, rescue, merge — the whole cluster lifecycle.

    Never hangs on worker death: shards without results are declared
    dead, their rows re-routed via the ring to surviving shards, and
    the report completes with degradation recorded.
    """
    config.validate()
    ring, per_shard = plan_shards(config)
    use_fork = not config.inline
    if use_fork:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            use_fork = False  # platform without fork: degrade to inline
    publish_snapshot(config)
    if use_fork:
        results = _run_forked(config, per_shard)
    else:
        results = _run_inline(config, per_shard)

    dead = sorted(set(per_shard) - set(results))
    rescue: Dict[int, Dict] = {}
    rerouted = 0
    if dead and len(dead) < config.shards:
        for shard in dead:
            ring.remove(shard)
        rerouted_rows: Dict[int, List[Row]] = {}
        for shard in dead:
            for row in per_shard[shard]:
                rerouted_rows.setdefault(ring.lookup(row[3]), []).append(row)
        rerouted = sum(len(rows) for rows in rerouted_rows.values())
        for owner in sorted(rerouted_rows):
            # The rescue pass runs in the parent: a fresh machine per
            # new owner replays the orphaned sub-schedule.  (Real
            # systems replay from a log; the simulated analogue is a
            # deterministic re-run on the surviving owner's twin.)
            rescue[owner] = run_shard(config, owner,
                                      sorted(rerouted_rows[owner]))
    return merge_report(config, results, rescue, dead, rerouted)
