"""Seeded open-loop load generation on the virtual-cycle clock.

A closed-loop client (``apps/webserver.WebClient``) issues the next
request only after the previous response arrived, so whenever the
server queues, the client *stops offering load* and the measured
latency silently excludes the queueing delay — the classic
**coordinated omission** error.  The open-loop generator here fixes
the arrival schedule in advance from a seed: request *i* is due at
virtual cycle ``base + arrival_i`` whether or not earlier requests
completed, and its latency is measured from the *intended* arrival to
response completion, so queueing (and sender back-pressure) shows up
in the percentiles where it belongs.

Mechanics, entirely on the existing guest channel ABI:

* one **client process** multiplexes ``connections`` logical
  connections into the server's request FIFO; a sender paces arrivals
  with ``GETTIME``/``NANOSLEEP`` on the virtual clock, and one
  receiver **thread per connection** blocks on that connection's
  response FIFO (webserver) or the shared response FIFO (kvstore);
* the server runs in serve-until-told-to-stop mode (``total <= 0``;
  see the shutdown sentinel in :mod:`repro.apps.webserver` and the
  unbounded serve mode in :mod:`repro.apps.kvstore`), so the request
  count is owned by the schedule — exactly what cluster re-routing
  needs;
* requests carry a deadline (``spec.deadline`` cycles after intended
  arrival); misses are recorded, never cancelled — an SLO meter, not
  an admission controller.

Everything is a pure function of ``(seed, LoadSpec)``; two runs of the
same spec produce byte-identical samples, and the per-machine cycle
ledger is untouched by the host-side bookkeeping (samples live on the
client's host-side program object, so observation costs nothing the
schedule did not already pay for).
"""

import hashlib
import json
import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.apps.kvstore import KVStore, REQ_FIFO, RSP_FIFO, Wire
from repro.apps.program import Program, UserContext
from repro.apps.webserver import (
    REQUEST_FIFO,
    REQUEST_SIZE,
    RESPONSE_HEADER,
    WebServer,
    pack_request,
    pack_shutdown,
    response_fifo,
)
from repro.guestos import uapi
from repro.machine import Machine
from repro.obs import bus
from repro.obs.metrics import MetricsRegistry

#: Registry name of generated open-loop client programs.
CLIENT_NAME = "loadgen"

#: Schedule row: (arrival offset, connection id, operation, key).
Row = Tuple[int, int, str, str]

ARRIVALS = ("poisson", "bursty", "uniform")
APPS = ("webserver", "kvstore")


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop workload, fully determined by its fields + seed."""

    app: str = "webserver"
    requests: int = 64
    #: Mean inter-arrival gap, virtual cycles (offered rate = 1e6/gap
    #: requests per Mcycle).
    mean_gap: int = 12_000
    arrival: str = "poisson"
    connections: int = 4
    #: SLO deadline in cycles, measured from the intended arrival.
    deadline: int = 240_000
    #: Key population size (documents for webserver, keys for kvstore).
    keys: int = 16
    #: Percentage of kvstore requests that are PUTs.
    put_pct: int = 25
    value_size: int = 32
    file_size: int = 2048
    seed: int = 0

    def validate(self) -> None:
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r} (want {APPS})")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r} (want {ARRIVALS})")
        if self.requests <= 0 or self.connections <= 0 or self.keys <= 0:
            raise ValueError("requests/connections/keys must be positive")
        if self.mean_gap <= 0 or self.deadline <= 0:
            raise ValueError("mean_gap/deadline must be positive")


def key_name(index: int) -> str:
    return f"k{index:04d}"


def doc_path(key: str) -> str:
    return f"/www/{key}.bin"


def doc_payload(key: str, size: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(hashlib.sha256(f"doc:{key}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:size])


# ---------------------------------------------------------------------------
# arrival schedule
# ---------------------------------------------------------------------------

def _gaps(rng: random.Random, spec: LoadSpec) -> List[int]:
    """Inter-arrival gaps (cycles) for ``spec.requests`` arrivals."""
    if spec.arrival == "uniform":
        return [spec.mean_gap] * spec.requests
    if spec.arrival == "poisson":
        return [max(1, int(rng.expovariate(1.0 / spec.mean_gap)))
                for _ in range(spec.requests)]
    # bursty: geometric trains of back-to-back arrivals (mean gap a
    # quarter of nominal) separated by long idle gaps (4x nominal), so
    # the offered *average* stays near 1e6/mean_gap while the peak
    # rate is ~4x — the shape that exposes queueing at the tail.
    gaps: List[int] = []
    while len(gaps) < spec.requests:
        burst = 1 + min(15, int(rng.expovariate(1.0 / 8)))
        gaps.append(4 * spec.mean_gap)
        for _ in range(burst - 1):
            gaps.append(max(1, int(rng.expovariate(4.0 / spec.mean_gap))))
    return gaps[: spec.requests]


def build_schedule(spec: LoadSpec) -> List[Row]:
    """The full arrival schedule, a pure function of ``spec``."""
    spec.validate()
    rng = random.Random(f"serve:{spec.seed}:{spec.app}:{spec.arrival}")
    gaps = _gaps(rng, spec)
    rows: List[Row] = []
    clock = 0
    for index in range(spec.requests):
        clock += gaps[index]
        key = key_name(rng.randrange(spec.keys))
        if spec.app == "webserver":
            op = "GET"
        else:
            op = "PUT" if rng.randrange(100) < spec.put_pct else "GET"
        rows.append((clock, index % spec.connections, op, key))
    return rows


# ---------------------------------------------------------------------------
# generated open-loop client programs
# ---------------------------------------------------------------------------

def _read_exact(ctx, fd, buf, nbytes):
    got = 0
    while got < nbytes:
        count = yield ctx.read(fd, buf + got, nbytes - got)
        if not isinstance(count, int) or count <= 0:
            return got
        got += count
    return got


def _write_all(ctx, fd, buf, nbytes):
    sent = 0
    while sent < nbytes:
        count = yield ctx.write(fd, buf + sent, nbytes - sent)
        if not isinstance(count, int) or count <= 0:
            return sent
        sent += count
    return sent


class _OpenLoopClient(Program):
    """Base for generated clients: host-side sample bookkeeping.

    ``samples`` rows are ``(index, intended, done, status)`` in
    completion order; ``base`` is the virtual cycle the schedule is
    anchored at.  Both live on the host-side program object (shared
    with receiver threads), so harvesting them costs no guest cycles.
    """

    name = CLIENT_NAME
    schedule: Tuple[Row, ...] = ()

    def __init__(self) -> None:
        self.samples: List[Tuple[int, int, int, int]] = []
        self.base: int = 0
        self._pending: Dict[int, deque] = {}


def make_web_client(rows: List[Row]) -> Type[Program]:
    """An open-loop client class for the web server, schedule baked in."""

    class OpenLoopWebClient(_OpenLoopClient):
        schedule = tuple(rows)

        def _receiver(self, ctx: UserContext, cid: int, count: int):
            header_buf = ctx.scratch(RESPONSE_HEADER.size)
            body_buf = ctx.scratch(64 * 1024)
            rsp_fd = yield from ctx.open_path(response_fifo(cid),
                                              uapi.O_RDONLY)
            if rsp_fd < 0:
                return 1
            for _ in range(count):
                got = yield from _read_exact(ctx, rsp_fd, header_buf,
                                             RESPONSE_HEADER.size)
                if got < RESPONSE_HEADER.size:
                    break  # server went away: report what completed
                header = yield ctx.load(header_buf, RESPONSE_HEADER.size)
                status, length = RESPONSE_HEADER.unpack(header)
                if length:
                    got = yield from _read_exact(ctx, rsp_fd, body_buf,
                                                 length)
                    if got < length:
                        break
                done = yield ctx.gettime()
                index, intended = self._pending[cid].popleft()
                self.samples.append((index, intended, done, status))
            yield ctx.close(rsp_fd)
            return 0

        def main(self, ctx: UserContext):
            conns = sorted({row[1] for row in self.schedule})
            expected = {cid: sum(1 for row in self.schedule
                                 if row[1] == cid)
                        for cid in conns}
            self._pending = {cid: deque() for cid in conns}
            self.base = yield ctx.gettime()
            tids = []
            for cid in conns:
                tid = yield ctx.thread_create(self._receiver, cid,
                                              expected[cid])
                tids.append(tid)
            req_fd = yield from ctx.open_path(REQUEST_FIFO, uapi.O_WRONLY)
            if req_fd < 0:
                yield from ctx.print("loadgen: no request fifo\n")
                return 1
            record_buf = ctx.scratch(REQUEST_SIZE)
            for index, (arrival, cid, _op, key) in enumerate(self.schedule):
                target = self.base + arrival
                now = yield ctx.gettime()
                if now < target:
                    yield ctx.nanosleep(target - now)
                self._pending[cid].append((index, target))
                yield ctx.store(record_buf,
                                pack_request(cid, doc_path(key)))
                sent = yield from _write_all(ctx, req_fd, record_buf,
                                             REQUEST_SIZE)
                if sent < REQUEST_SIZE:
                    break
            yield ctx.store(record_buf, pack_shutdown())
            yield from _write_all(ctx, req_fd, record_buf, REQUEST_SIZE)
            yield ctx.close(req_fd)
            for tid in tids:
                yield ctx.thread_join(tid)
            yield from ctx.print(f"loadgen done {len(self.samples)}\n")
            return 0

    return OpenLoopWebClient


def make_kv_client(rows: List[Row], value_size: int) -> Type[Program]:
    """An open-loop client class for the kvstore.

    All logical connections share the store's single request/response
    FIFO pair; responses arrive in request order, so one receiver
    thread matches them against the shared pending queue.
    """

    class OpenLoopKVClient(_OpenLoopClient):
        schedule = tuple(rows)

        def image_bytes(self, image_size: int = 8192) -> bytes:
            # The client presents the *store's* binary image: sealing
            # principals derive from the identity hash, so a cloaked
            # client carrying this image shares the store's sealed
            # channel — the open-loop analogue of the store's forked
            # same-identity connection handlers.
            return KVStore().image_bytes(image_size)

        def _receiver(self, ctx: UserContext, count: int):
            buf = ctx.scratch(4 * 1024)
            rsp_fd = yield from ctx.open_path(RSP_FIFO, uapi.O_RDONLY)
            if rsp_fd < 0:
                return 1
            for _ in range(count):
                reply = yield from Wire.recv(ctx, rsp_fd, buf)
                if reply is None:
                    break
                done = yield ctx.gettime()
                index, intended = self._pending[0].popleft()
                status = 500 if reply == b"ERR" else 200
                self.samples.append((index, intended, done, status))
            # Drain the server's BYE so the FIFO quiesces cleanly.
            yield from Wire.recv(ctx, rsp_fd, buf)
            yield ctx.close(rsp_fd)
            return 0

        def main(self, ctx: UserContext):
            self._pending = {0: deque()}
            self.base = yield ctx.gettime()
            tid = yield ctx.thread_create(self._receiver,
                                          len(self.schedule))
            req_fd = yield from ctx.open_path(REQ_FIFO, uapi.O_WRONLY)
            if req_fd < 0:
                yield from ctx.print("loadgen: no request fifo\n")
                return 1
            wire_buf = ctx.scratch(4 * 1024)
            for index, (arrival, _cid, op, key) in enumerate(self.schedule):
                target = self.base + arrival
                now = yield ctx.gettime()
                if now < target:
                    yield ctx.nanosleep(target - now)
                if op == "PUT":
                    value = doc_payload(key, value_size).hex()[: value_size]
                    command = f"PUT {key} {value}".encode()
                else:
                    command = f"GET {key}".encode()
                self._pending[0].append((index, target))
                ok = yield from Wire.send(ctx, req_fd, wire_buf, command)
                if not ok:
                    break
            yield from Wire.send(ctx, req_fd, wire_buf, b"QUIT")
            yield ctx.close(req_fd)
            yield ctx.thread_join(tid)
            yield from ctx.print(f"loadgen done {len(self.samples)}\n")
            return 0

    return OpenLoopKVClient


def make_client(spec: LoadSpec, rows: List[Row]) -> Type[Program]:
    if spec.app == "webserver":
        return make_web_client(rows)
    return make_kv_client(rows, spec.value_size)


# ---------------------------------------------------------------------------
# workload setup / execution on one machine
# ---------------------------------------------------------------------------

def server_class(app: str) -> Type[Program]:
    return WebServer if app == "webserver" else KVStore


def setup_workload(machine: Machine, spec: LoadSpec,
                   rows: List[Row]) -> None:
    """Pre-create the FIFOs and (for the webserver) the documents."""
    vfs = machine.kernel.vfs
    if spec.app == "webserver":
        if not vfs.exists("/www"):
            vfs.mkdir("/www")
        if not vfs.exists("/srv"):
            vfs.mkdir("/srv")
        for key in sorted({row[3] for row in rows}):
            path = doc_path(key)
            if not vfs.exists(path):
                inode = vfs.create_file(path)
                machine.kernel.fs.write(inode, 0,
                                        doc_payload(key, spec.file_size))
        if not vfs.exists(REQUEST_FIFO):
            vfs.mkfifo(REQUEST_FIFO)
        for cid in sorted({row[1] for row in rows}):
            if not vfs.exists(response_fifo(cid)):
                vfs.mkfifo(response_fifo(cid))
    else:
        if not vfs.exists("/secure"):
            vfs.mkdir("/secure")
        # The kvstore's own main() creates its FIFOs (EEXIST-tolerant);
        # pre-creating them removes the spawn-order dependency.
        for path in (REQ_FIFO, RSP_FIFO):
            if not vfs.exists(path):
                vfs.mkfifo(path)


def _server_argv(app: str) -> Tuple[str, ...]:
    # total/max_requests <= 0: serve until the schedule says stop.
    return ("0",) if app == "webserver" else ("serve", "0")


def percentile(sorted_values: List[int], q: float) -> int:
    """Nearest-rank percentile over pre-sorted integer samples."""
    if not sorted_values:
        return 0
    rank = int(-(-q * len(sorted_values) // 100))  # ceil without floats-ish
    return sorted_values[max(0, min(len(sorted_values), rank) - 1)]


def cycle_hash(total: int, breakdown: Dict[str, int]) -> str:
    """A short stable digest of a cycle-ledger interval."""
    blob = json.dumps({"total": total, "by": breakdown},
                      sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def drive_open_loop(machine: Machine, spec: LoadSpec, rows: List[Row],
                    cloaked: bool = False, attach_metrics: bool = False,
                    max_ops: int = 20_000_000) -> Dict:
    """Run one open-loop schedule against ``machine``'s server.

    The machine must already have the server program registered
    (cloaked iff ``cloaked``); the generated client is registered
    here — cloaked alongside a cloaked kvstore (its requests must
    cross the sealed channel under the store's identity; see
    ``image_bytes`` on the generated client), native otherwise (the
    webserver declassifies responses, so plain clients interoperate).
    Returns a plain-dict result — JSON-able, deterministic, and
    mergeable by :mod:`repro.serve.cluster`.
    """
    client_cloaked = cloaked and spec.app == "kvstore"
    machine.register(make_client(spec, rows), cloaked=client_cloaked)
    setup_workload(machine, spec, rows)
    registry: Optional[MetricsRegistry] = None
    cycle_snap = machine.cycles.snapshot()
    if attach_metrics:
        registry = MetricsRegistry()
        bus.attach(registry, machine.cycles)
    try:
        server_proc = machine.spawn(spec.app, _server_argv(spec.app))
        client_proc = machine.spawn(CLIENT_NAME)
        machine.run(max_ops=max_ops)
    finally:
        if registry is not None:
            bus.detach(registry)
    program = client_proc.runtime.program
    delta = machine.cycles.since(cycle_snap)
    result = harvest(spec, rows, program.samples, program.base,
                     delta.total, delta.breakdown())
    result["server_exit"] = server_proc.exit_code
    result["violations"] = len(machine.violations)
    if registry is not None:
        result["metrics"] = registry.snapshot()
    return result


def harvest(spec: LoadSpec, rows: List[Row],
            samples: List[Tuple[int, int, int, int]], base: int,
            cycles_total: int, breakdown: Dict[str, int]) -> Dict:
    """Fold raw samples into the deterministic per-run result dict."""
    latencies = sorted(done - intended
                       for _idx, intended, done, _status in samples)
    errors = sum(1 for *_rest, status in samples if status != 200)
    slo_misses = sum(1 for lat in latencies if lat > spec.deadline)
    completed = len(samples)
    span = (rows[-1][0] - rows[0][0]) if len(rows) > 1 else 1
    last_done = max((done for _i, _t, done, _s in samples), default=base)
    run_span = max(1, last_done - base)
    return {
        "app": spec.app,
        "requests": len(rows),
        "completed": completed,
        "errors": errors,
        "slo_misses": slo_misses,
        "deadline": spec.deadline,
        "latency": {
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
            "p999": percentile(latencies, 99.9),
            "max": latencies[-1] if latencies else 0,
        },
        "latencies": latencies,
        "offered_per_mcycle": round(1_000_000 * len(rows) / max(1, span), 4),
        "achieved_per_mcycle": round(1_000_000 * completed / run_span, 4),
        "cycles": cycles_total,
        "cycle_hash": cycle_hash(cycles_total, breakdown),
    }


def run_open_loop(spec: LoadSpec, cloaked: bool = False,
                  attach_metrics: bool = False) -> Dict:
    """Convenience single-machine entry: boot, register, drive."""
    machine = Machine.build()
    machine.register(server_class(spec.app), cloaked=cloaked)
    rows = build_schedule(spec)
    return drive_open_loop(machine, spec, rows, cloaked=cloaked,
                           attach_metrics=attach_metrics)
