"""``repro.serve``: open-loop load generation and sharded serving.

The paper's headline claim is that cloaking is cheap enough for real
server workloads; the closed-loop microbenchmarks in ``repro.bench``
famously understate the cost under load (coordinated omission: a
closed-loop client stops offering work while it waits, so queueing
delay never shows up in its numbers).  This package supplies the
production-style evaluation:

* :mod:`repro.serve.loadgen` — a seeded **open-loop** load generator
  on the virtual-cycle clock: arrivals follow a Poisson or bursty
  process fixed in advance, requests carry deadlines, and one client
  process multiplexes many logical connections into the guest
  webserver / kvstore over the existing FIFO channel ABI.
* :mod:`repro.serve.ring` — a consistent-hash ring (virtual nodes)
  routing keys across shards with minimal remapping on membership
  change.
* :mod:`repro.serve.cluster` — N :class:`repro.machine.Machine`
  shards across ``multiprocessing`` workers, each restored from one
  shared COW snapshot, with per-shard ``repro.obs`` metrics merged
  into a single deterministic cluster-wide report.  A single-process
  ``inline`` mode produces a byte-identical report.

Layering: ``repro.serve`` sits *above* the simulated world — it may
import ``repro.apps``, ``repro.machine``, ``repro.obs``,
``repro.hw.snapshot`` and the guest ABI (``repro.guestos.uapi``), and
never ``repro.core`` internals (API001 enforces this via
``repro.analysis.matrix.LAYER_MATRIX``).
"""

from repro.serve.ring import HashRing
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.cluster import ClusterConfig, run_cluster

__all__ = [
    "HashRing",
    "LoadSpec",
    "build_schedule",
    "run_open_loop",
    "ClusterConfig",
    "run_cluster",
]
