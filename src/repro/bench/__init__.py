"""Benchmark harness: regenerates every table and figure of the
(reconstructed) evaluation.

Each ``exp_*`` module exposes ``run(verbose=...)`` returning structured
results; the pytest-benchmark wrappers in ``benchmarks/`` call these
and print the paper-style tables.  See DESIGN.md for the experiment
index (R-T1..R-T4, R-F1..R-F4, R-A1..R-A3).
"""

from repro.bench.runner import compare_program, fresh_machine, measure_program
from repro.bench.tables import Series, Table

__all__ = [
    "Series",
    "Table",
    "compare_program",
    "fresh_machine",
    "measure_program",
]
