"""R-T4: the security-evaluation outcome matrix.

Runs the full attack suite against native and cloaked victims; the
table is the reproduction of the paper's security argument, with the
syscall-lie row marking the acknowledged trust-boundary limit.
"""

from typing import Dict, List, Tuple

from repro.attacks import AttackOutcome, run_suite
from repro.bench.tables import Table


def run(verbose: bool = True) -> Dict[str, Tuple[str, str]]:
    """Returns {attack: (native outcome, cloaked outcome)}."""
    reports = run_suite()
    matrix: Dict[str, Dict[bool, str]] = {}
    for report in reports:
        matrix.setdefault(report.attack_name, {})[report.cloaked] = \
            report.outcome.value

    rows = {name: (by_mode.get(False, "-"), by_mode.get(True, "-"))
            for name, by_mode in matrix.items()}

    if verbose:
        table = Table("R-T4: attack outcome matrix",
                      ["attack", "native victim", "cloaked victim"])
        for name, (native, cloaked) in rows.items():
            table.add_row(name, native, cloaked)
        table.show()
    return rows


def cloaked_is_safe(rows: Dict[str, Tuple[str, str]]) -> bool:
    """The headline claim: no cloaked run ever LEAKED."""
    return all(cloaked != AttackOutcome.LEAKED.value
               for __, cloaked in rows.values())


if __name__ == "__main__":
    run()
