"""R-F7: overhead decomposition from probe-bus data alone.

R-T1 (:mod:`repro.bench.exp_transitions`) measures transition costs by
differencing the cycle ledger around each thunk.  This experiment
re-derives the same table *without ever reading the ledger delta*: it
attaches a :class:`repro.obs.export.TraceRecorder` around the measured
thunk and sums the ``cost`` fields of the ``cloak.*`` probe events the
engine emitted.  Agreement is the end-to-end proof that the probe
stream is complete — every cycle the cloaking protocol charges on
these paths is visible to observability tooling, so flame summaries
and Perfetto traces built from probes can be trusted to add up.

(The ISSUE text names this table R-F6; that id was already taken by
the sealed-IPC extension, so it registers as ``r-f7``.)
"""

from typing import Dict

from repro.bench import exp_transitions
from repro.bench.tables import Table
from repro.obs import bus
from repro.obs.export import TraceRecorder


def _measure_from_probes(fn) -> Dict[str, int]:
    """Run one scenario; returns probe-derived cost and event count.

    The recorder attaches only around the measured thunk, so prep
    traffic (which R-T1's ledger snapshot also excludes) never lands
    in the sum.
    """
    engine, domain, phys, cycles = exp_transitions._engine()
    prepared = fn(engine, domain, phys)
    recorder = TraceRecorder()
    bus.attach(recorder, cycles)
    try:
        prepared()
    finally:
        bus.detach(recorder)
    cost = 0
    transitions = 0
    for name, __cycle, args in recorder.events:
        fields = bus.PROBES[name]
        if "cost" in fields:
            cost += args[fields.index("cost")]
            transitions += 1
    return {"cycles": cost, "transitions": transitions}


def run(verbose: bool = True) -> Dict[str, int]:
    """Decompose each R-T1 transition from probes; returns
    {transition: probe-derived cycles}."""
    rows = {name: _measure_from_probes(fn)
            for name, fn in exp_transitions.scenarios().items()}
    results = {name: row["cycles"] for name, row in rows.items()}

    if verbose:
        ledger = exp_transitions.run(verbose=False)
        table = Table("R-F7: transition costs decomposed from probe events",
                      ["transition", "probe cycles", "ledger cycles",
                       "events", "match"])
        for name, row in rows.items():
            table.add_row(name, row["cycles"], ledger[name],
                          row["transitions"],
                          "yes" if row["cycles"] == ledger[name] else "NO")
        table.show()
        if results == ledger:
            print("probe decomposition matches the cycle ledger exactly")
        else:
            print("MISMATCH between probe decomposition and cycle ledger")
    return results


if __name__ == "__main__":
    run()
