"""R-T3: VMM resource overheads and cloaking event counts.

The paper's space/bookkeeping table: metadata bytes per protected
page, shadow-context footprint, and how many cloaking transitions each
workload class actually takes (the event counts explain the cycle
results of R-F1..R-F4).
"""

from typing import Dict, List, Tuple

from repro.bench.runner import fresh_machine, measure_program
from repro.bench.tables import Table
from repro.core.metadata import METADATA_BYTES_PER_PAGE

WORKLOADS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("matmul", ()),
    ("seqwrite-secure", ()),
    ("forkstress", ("3", "10000")),
    ("mb-getpid", ("30",)),
)

EVENT_KEYS = (
    ("cloak.zero_fills", "zero-fills"),
    ("cloak.decrypts", "decrypts"),
    ("cloak.encrypts", "encrypts"),
    ("cloak.ct_restores", "ct-restores"),
    ("vmm.cloaked_exits", "kernel entries"),
    ("vmm.hypercalls", "hypercalls"),
)


def run(verbose: bool = True) -> Dict[str, Dict[str, int]]:
    """Per-workload cloaking event counts + the static space numbers."""
    results: Dict[str, Dict[str, int]] = {}
    reports = {}
    for name, argv in WORKLOADS:
        machine = fresh_machine(cloaked=True)
        name_actual = name
        if name == "seqwrite-secure":
            name_actual = "filestreamer"
            argv = ("write", "/secure/ovh.bin", "4096", str(128 * 1024))
        result = measure_program(machine, name_actual, argv)
        results[name] = {label: result.stats.get(key, 0)
                         for key, label in EVENT_KEYS}
        reports[name] = machine.vmm.resource_report()

    if verbose:
        table = Table(
            "R-T3a: cloaking events per workload (cloaked runs)",
            ["workload"] + [label for __, label in EVENT_KEYS],
        )
        for name, counts in results.items():
            table.add_row(name, *(counts[label] for __, label in EVENT_KEYS))
        table.show()

        space = Table(
            "R-T3b: VMM space overhead",
            ["quantity", "value"],
        )
        space.add_row("metadata bytes / cloaked page", METADATA_BYTES_PER_PAGE)
        sample = reports["seqwrite-secure"]
        space.add_row("peak page metadata entries (seqwrite-secure)",
                      sample["page_metadata_peak_entries"])
        space.add_row("peak page metadata bytes (seqwrite-secure)",
                      sample["page_metadata_peak_bytes"])
        space.add_row("file metadata entries persisted (seqwrite-secure)",
                      sample["file_metadata_entries"])
        space.add_row("file metadata bytes persisted (seqwrite-secure)",
                      sample["file_metadata_bytes"])
        space.add_row("peak shadow entries (seqwrite-secure)",
                      sample["shadow_peak_entries"])
        space.show()
    results["_space"] = reports["seqwrite-secure"]
    return results


if __name__ == "__main__":
    run()
