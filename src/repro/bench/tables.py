"""ASCII tables and series, matching the paper's presentation style."""

from typing import Any, Dict, Iterable, List, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


class Table:
    """A titled table with aligned columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


class Series:
    """Figure-style data: one x-axis, several named series."""

    def __init__(self, title: str, x_label: str, series_names: Sequence[str]):
        self.title = title
        self.x_label = x_label
        self.series_names = list(series_names)
        self.points: List[tuple] = []

    def add_point(self, x: Any, *values: Any) -> None:
        if len(values) != len(self.series_names):
            raise ValueError("point arity mismatch")
        self.points.append((x, values))

    def as_table(self) -> Table:
        table = Table(self.title, [self.x_label] + self.series_names)
        for x, values in self.points:
            table.add_row(x, *values)
        return table

    def show(self) -> None:
        self.as_table().show()

    def series(self, name: str) -> List[Any]:
        index = self.series_names.index(name)
        return [values[index] for __, values in self.points]

    def xs(self) -> List[Any]:
        return [x for x, __ in self.points]
