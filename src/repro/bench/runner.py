"""Shared machinery for running experiments.

Measurements are *virtual cycles* from the machine's deterministic
ledger; wall-clock timing (pytest-benchmark) only gauges the harness
itself.  Every comparison runs on a private machine so no state (page
cache, metadata, TLB) bleeds between configurations — default-shaped
machines come from a golden boot snapshot (cycle- and state-identical
to a fresh boot, restored in O(dirty pages)); non-default shapes boot
from scratch.
"""

from typing import Dict, Optional, Tuple

from repro.apps.registry import make_secure_dirs, register_all
from repro.core.vmm import VMMConfig
from repro.hw import snapshot as snapshot_mod
from repro.hw.params import MachineParams
from repro.machine import Machine, ProcessResult

#: Golden boot snapshots for default-shaped machines, keyed by
#: (cloaked, registered-program tuple).
_GOLDEN_SNAPSHOTS: Dict[Tuple, snapshot_mod.SnapshotState] = {}


def fresh_machine(cloaked: bool = False,
                  vmm_config: Optional[VMMConfig] = None,
                  params: Optional[MachineParams] = None,
                  programs: Optional[Tuple[str, ...]] = None) -> Machine:
    """A machine with the standard suite registered and dirs created.

    Default-shaped machines (no params/vmm_config override) restore
    from a cached golden snapshot instead of re-booting.
    """
    if (vmm_config is None and params is None
            and snapshot_mod.snapshots_enabled()):
        key = (cloaked, programs)
        golden = _GOLDEN_SNAPSHOTS.get(key)
        if golden is None:
            golden = _boot(cloaked, None, None, programs).snapshot()
            _GOLDEN_SNAPSHOTS[key] = golden
        return Machine.from_snapshot(golden)
    return _boot(cloaked, vmm_config, params, programs)


def _boot(cloaked: bool, vmm_config: Optional[VMMConfig],
          params: Optional[MachineParams],
          programs: Optional[Tuple[str, ...]]) -> Machine:
    machine = Machine.build(params=params, vmm_config=vmm_config)
    make_secure_dirs(machine)
    register_all(machine, cloaked=cloaked,
                 only=programs if programs is not None else None)
    return machine


def measure_program(machine: Machine, name: str,
                    argv: Tuple[str, ...] = ()) -> ProcessResult:
    result = machine.run_program(name, argv)
    if result.exit_code != 0:
        raise RuntimeError(
            f"{name}{argv} exited {result.exit_code}: {result.text!r} "
            f"(violations: {machine.violations})"
        )
    return result


def compare_program(name: str, argv: Tuple[str, ...] = (),
                    vmm_config: Optional[VMMConfig] = None,
                    params: Optional[MachineParams] = None,
                    setup=None) -> Tuple[ProcessResult, ProcessResult]:
    """Run one program natively and cloaked on fresh machines.

    ``setup(machine)`` runs before the program (seed files etc.).
    Raises if the two runs' console output differs — cloaking must be
    transparent to the application.
    """
    results = []
    for cloaked in (False, True):
        machine = fresh_machine(cloaked=cloaked, vmm_config=vmm_config,
                                params=params)
        if setup is not None:
            setup(machine)
        results.append(measure_program(machine, name, argv))
    native, cloaked_result = results
    if native.console != cloaked_result.console:
        raise AssertionError(
            f"cloaking was not transparent for {name}: "
            f"{native.console!r} != {cloaked_result.console!r}"
        )
    return native, cloaked_result


def overhead_pct(native_cycles: int, cloaked_cycles: int) -> float:
    if native_cycles == 0:
        return 0.0
    return 100.0 * (cloaked_cycles - native_cycles) / native_cycles


def ratio(native_cycles: float, cloaked_cycles: float) -> float:
    if native_cycles == 0:
        return float("inf")
    return cloaked_cycles / native_cycles
