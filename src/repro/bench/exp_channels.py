"""R-F6 (extension): sealed-IPC throughput vs message size.

Three configurations stream the same payload through a FIFO between a
parent and its forked child:

* native, plain FIFO — the baseline pipe path;
* cloaked, plain FIFO — marshalling copies only (data crosses the
  kernel in plaintext: the unprotected-IPC hole the extension closes);
* cloaked, **sealed** FIFO — every message encrypted + MAC'd through
  the VMM before the kernel's pipe sees it.

Expected shape: sealing costs per-byte crypto, so its relative price
falls as messages grow (fixed per-record costs amortise) but never
reaches the unsealed paths; the unsealed cloaked path trails native by
the marshalling copy alone.
"""

from typing import List, Tuple

from repro.bench.runner import fresh_machine, measure_program
from repro.bench.tables import Series

MESSAGE_SIZES = (256, 1024, 4096)
TOTAL_BYTES = 64 * 1024


def _throughput(cloaked: bool, fifo_path: str, message_size: int) -> float:
    machine = fresh_machine(cloaked=cloaked, programs=("chanpump",))
    result = measure_program(
        machine, "chanpump",
        (fifo_path, str(message_size), str(TOTAL_BYTES)),
    )
    assert f"pumped {TOTAL_BYTES} child=0" in result.text, result.text
    return TOTAL_BYTES / (result.cycles_total / 1000.0)


def run(verbose: bool = True) -> Series:
    series = Series(
        "R-F6 (ext): FIFO throughput vs message size (bytes per 1k cycles)",
        "message",
        ["native/plain", "cloaked/plain", "cloaked/sealed"],
    )
    for message_size in MESSAGE_SIZES:
        series.add_point(
            message_size,
            _throughput(False, "/chan", message_size),
            _throughput(True, "/chan", message_size),
            _throughput(True, "/secure/chan", message_size),
        )
    if verbose:
        series.show()
    return series


if __name__ == "__main__":
    run()
