"""R-F4: fork/exec-heavy workload (the compile-farm figure).

Process creation is cloaked execution's worst case: the kernel's
address-space copy drags every parent page through the encrypt path,
and each exec pays a fresh domain bootstrap (identity check + image
adoption).  The table also breaks out where the cloaked cycles go.
"""

from typing import Dict, List, Tuple

from repro.bench.runner import compare_program, ratio
from repro.bench.tables import Table

JOB_COUNTS = (2, 4, 8)


def run(verbose: bool = True) -> List[Tuple[str, int, int, float, float]]:
    """Returns rows (workload, native, cloaked, slowdown, crypto %)."""
    rows = []
    for jobs in JOB_COUNTS:
        native, cloaked = compare_program("forkstress", (str(jobs), "20000"))
        crypto_share = 100.0 * cloaked.cycles_breakdown.get("crypto", 0) \
            / cloaked.cycles_total
        rows.append((f"forkstress x{jobs}", native.cycles_total,
                     cloaked.cycles_total,
                     ratio(native.cycles_total, cloaked.cycles_total),
                     crypto_share))
    for jobs in (2, 4):
        native, cloaked = compare_program("compilefarm", (str(jobs),))
        crypto_share = 100.0 * cloaked.cycles_breakdown.get("crypto", 0) \
            / cloaked.cycles_total
        rows.append((f"compilefarm x{jobs}", native.cycles_total,
                     cloaked.cycles_total,
                     ratio(native.cycles_total, cloaked.cycles_total),
                     crypto_share))

    if verbose:
        table = Table(
            "R-F4: fork/exec workloads (virtual cycles)",
            ["workload", "native", "cloaked", "slowdown", "crypto share"],
        )
        for name, n, c, r, share in rows:
            table.add_row(name, n, c, f"{r:.2f}x", f"{share:.0f}%")
        table.show()
    return rows


if __name__ == "__main__":
    run()
