"""R-T1: the cloaking state-transition cost matrix.

Reproduces the paper's per-transition accounting for its page-state
diagram: what each kind of context/state mismatch costs, in virtual
cycles.  These are the primitive costs every macro result decomposes
into.

The scenario catalog (:func:`scenarios`) is shared with the
probe-based decomposition experiment (:mod:`repro.bench.exp_decomp`),
which re-derives this table from probe-bus events alone and asserts
the two agree.
"""

from typing import Callable, Dict

from repro.bench.tables import Table
from repro.core.cloak import CloakConfig, CloakEngine
from repro.core.crypto import PageCipher
from repro.core.domains import ProtectionDomain
from repro.core.metadata import FileMetadataStore, MetadataStore
from repro.hw.cycles import CycleAccount, StatCounters
from repro.hw.faults import AccessKind
from repro.hw.params import CostTable
from repro.hw.phys import PhysicalMemory

VPN = 0x100
GPFN = 2


def _engine():
    phys = PhysicalMemory(8)
    cycles = CycleAccount()
    engine = CloakEngine(phys, cycles, StatCounters(), CostTable(),
                         MetadataStore(), FileMetadataStore(), CloakConfig())
    cipher = PageCipher(b"bench-master", b"bench-app")
    domain = ProtectionDomain(1, "bench", cipher, b"img")
    domain.cloak_range(0, 0x1000)
    engine.register_cipher(cipher)
    return engine, domain, phys, cycles


def _measure(fn) -> int:
    engine, domain, phys, cycles = _engine()
    prepared = fn(engine, domain, phys)  # returns the measured thunk
    snap = cycles.snapshot()
    prepared()
    return cycles.since(snap).total


def scenarios() -> Dict[str, Callable]:
    """transition name -> prep function.

    Each prep function takes ``(engine, domain, phys)``, drives the
    page into the desired pre-state, and returns the zero-argument
    thunk whose cost *is* the transition.
    """

    def first_touch(engine, domain, phys):
        return lambda: engine.resolve_app_access(domain, VPN, GPFN,
                                                 AccessKind.READ)

    def in_place_write(engine, domain, phys):
        engine.resolve_app_access(domain, VPN, GPFN, AccessKind.WRITE)
        return lambda: engine.resolve_app_access(domain, VPN, GPFN,
                                                 AccessKind.WRITE)

    def encrypt_dirty(engine, domain, phys):
        md = engine.resolve_app_access(domain, VPN, GPFN, AccessKind.WRITE)
        phys.write(GPFN, 0, b"data")
        return lambda: engine.resolve_system_access(md, GPFN)

    def restore_clean(engine, domain, phys):
        md = engine.resolve_app_access(domain, VPN, GPFN, AccessKind.WRITE)
        phys.write(GPFN, 0, b"data")
        engine.resolve_system_access(md, GPFN)
        engine.resolve_app_access(domain, VPN, GPFN, AccessKind.READ)
        return lambda: engine.resolve_system_access(md, GPFN)

    def reencrypt_clean_noopt(engine, domain, phys):
        engine.config.clean_page_optimization = False
        md = engine.resolve_app_access(domain, VPN, GPFN, AccessKind.WRITE)
        phys.write(GPFN, 0, b"data")
        engine.resolve_system_access(md, GPFN)
        engine.resolve_app_access(domain, VPN, GPFN, AccessKind.READ)
        return lambda: engine.resolve_system_access(md, GPFN)

    def decrypt_verify(engine, domain, phys):
        md = engine.resolve_app_access(domain, VPN, GPFN, AccessKind.WRITE)
        phys.write(GPFN, 0, b"data")
        engine.resolve_system_access(md, GPFN)
        return lambda: engine.resolve_app_access(domain, VPN, GPFN,
                                                 AccessKind.READ)

    return {
        "app first touch (zero-fill)": first_touch,
        "app write, already plaintext (no-op)": in_place_write,
        "app access, encrypted (verify+decrypt)": decrypt_verify,
        "system touch, dirty plaintext (encrypt+MAC)": encrypt_dirty,
        "system touch, clean plaintext (ciphertext restore)": restore_clean,
        "system touch, clean plaintext w/o optimisation": reencrypt_clean_noopt,
    }


def run(verbose: bool = True) -> Dict[str, int]:
    """Measure each transition; returns {transition: cycles}."""
    results = {name: _measure(fn) for name, fn in scenarios().items()}

    if verbose:
        table = Table("R-T1: cloaking transition costs (virtual cycles/page)",
                      ["transition", "cycles"])
        for name, cycles in results.items():
            table.add_row(name, cycles)
        table.show()
    return results


if __name__ == "__main__":
    run()
