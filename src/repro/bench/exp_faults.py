"""R-T5: the fault-recovery outcome matrix (extension).

Companion to R-T4: where the attack matrix shows *malice* cannot
defeat cloaking, this table shows *misfortune* cannot either.  Every
registered injection point is armed against a cloaked workload and the
run is classified by the differential oracle — the headline claim is
that every row lands on RECOVERED or DETECTED, never on EXPOSED
(plaintext became kernel-visible) or CORRUPTED (silent divergence).

Availability is explicitly sacrificial, exactly as in the paper: a
detected fault may kill the workload, but it announces itself as a
typed violation first.
"""

from typing import List

from repro.bench.tables import Table
from repro.faults import oracle

MATRIX_SEED = 7


def run(verbose: bool = True, seed: int = MATRIX_SEED) -> List["oracle.MatrixRow"]:
    rows = oracle.run_fault_matrix(seed=seed)
    if verbose:
        table = Table(
            f"R-T5: fault-recovery matrix (cloaked victims, seed {seed})",
            ["injection point", "workload", "arm", "opps", "fires",
             "outcome"],
        )
        for row in rows:
            table.add_row(row.site, row.app, row.arm, row.opportunities,
                          row.fires, row.outcome)
        table.show()
    return rows


def all_contained(rows: List["oracle.MatrixRow"]) -> bool:
    """The headline claim: every fault recovers or is detected."""
    return oracle.matrix_contained(rows)


if __name__ == "__main__":
    run()
