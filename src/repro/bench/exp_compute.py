"""R-F1: compute-workload suite, normalized runtime.

The SPECint-style figure: bars of cloaked runtime normalized to the
native (uncloaked-on-VMM) baseline.  Expected shape: compute-bound
workloads pay only startup + periodic CTC/world-switch costs — single-
digit percent once the run is long enough — because pure user-mode
execution never triggers cloaking transitions.

``compare_program`` also asserts output transparency: native and
cloaked runs must print identical checksums.
"""

from typing import List, Tuple

from repro.apps.compute import COMPUTE_SUITE
from repro.bench.runner import compare_program, overhead_pct
from repro.bench.tables import Table


def run(verbose: bool = True) -> List[Tuple[str, int, int, float]]:
    """Returns rows (kernel, native cycles, cloaked cycles, overhead %)."""
    rows = []
    for program_cls in COMPUTE_SUITE:
        native, cloaked = compare_program(program_cls.name)
        rows.append((
            program_cls.name,
            native.cycles_total,
            cloaked.cycles_total,
            overhead_pct(native.cycles_total, cloaked.cycles_total),
        ))

    if verbose:
        table = Table(
            "R-F1: compute workloads (virtual cycles, normalized)",
            ["kernel", "native", "cloaked", "overhead"],
        )
        for name, native_cycles, cloaked_cycles, pct in rows:
            table.add_row(name, native_cycles, cloaked_cycles, f"{pct:.1f}%")
        mean = sum(r[3] for r in rows) / len(rows)
        table.add_row("geomean-ish (arith.)", "", "", f"{mean:.1f}%")
        table.show()
    return rows


if __name__ == "__main__":
    run()
