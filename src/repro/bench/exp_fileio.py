"""R-F2: file-I/O bandwidth vs buffer size.

Three configurations per buffer size:

* native, unprotected file — the baseline kernel read/write path;
* cloaked, unprotected file — same path plus shim marshalling copies;
* cloaked, protected file — the memory-mapped emulation (no kernel
  data path at all after the window is built).

Expected shape (paper): marshalling costs one extra copy (overhead
shrinks as buffers grow and copies amortise syscall costs); the
emulated path beats the marshalled path for warm windows because
read/write become pure user-space copies.
"""

from typing import Dict, List

from repro.bench.runner import fresh_machine, measure_program
from repro.bench.tables import Series

BUFFER_SIZES = (1024, 4096, 16384, 65536)
TOTAL_BYTES = 256 * 1024


def _bandwidth(cloaked: bool, path: str, buffer_size: int) -> float:
    """Write then read TOTAL_BYTES (one dd-style binary, so both
    phases share one identity); returns bytes per kilocycle."""
    machine = fresh_machine(cloaked=cloaked, programs=("filestreamer",))
    args = (path, str(buffer_size), str(TOTAL_BYTES))
    write = measure_program(machine, "filestreamer", ("write",) + args)
    read = measure_program(machine, "filestreamer", ("read",) + args)
    expected = f"read {TOTAL_BYTES} "
    if expected not in read.text:
        raise RuntimeError(f"short read-back: {read.text!r}")
    total_cycles = write.cycles_total + read.cycles_total
    return 2 * TOTAL_BYTES / (total_cycles / 1000.0)


def run(verbose: bool = True) -> Series:
    series = Series(
        "R-F2: file I/O bandwidth vs buffer size (bytes per 1k cycles)",
        "buffer",
        ["native/plain", "cloaked/plain (marshalled)",
         "cloaked/protected (emulated)"],
    )
    for buffer_size in BUFFER_SIZES:
        series.add_point(
            buffer_size,
            _bandwidth(False, "/data.bin", buffer_size),
            _bandwidth(True, "/data.bin", buffer_size),
            _bandwidth(True, "/secure/data.bin", buffer_size),
        )
    if verbose:
        series.show()
    return series


if __name__ == "__main__":
    run()
