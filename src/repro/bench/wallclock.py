"""Wall-clock benchmark harness: how fast the *simulator itself* runs.

Every number the reproduction reports is a virtual-cycle count; wall
clock never appears in any result.  This harness measures the other
axis — how much host time the machine burns producing those numbers —
so host-performance work (vectorized crypto, zero-copy memory paths)
can be held to a recorded trajectory without ever being allowed to
move a virtual-cycle figure.

The contract, enforced here and by CI:

* **virtual cycles are the result** — each workload reports the cycle
  totals of its runs, and ``cycle_hash`` digests them; any host-side
  optimisation must leave the hash bit-identical;
* **wall clock is the harness** — per-workload wall time is measured
  with warmup + repeats + median and recorded next to the cycles in
  ``BENCH_wallclock.json``, so speed and correctness travel together.

Usage::

    python -m repro wallclock                    # full run, writes JSON
    python -m repro wallclock --repeats 1 --warmup 0   # CI smoke
    python -m repro wallclock --check BENCH_wallclock.json
"""

import hashlib
import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.microbench import MICRO_SUITE
from repro.bench.runner import fresh_machine, measure_program

DEFAULT_OUT = "BENCH_wallclock.json"
SCHEMA = 1

#: Cloak-transition stat counters summed into the ``pages`` figure:
#: each is one page-sized crypto or scrub operation.
PAGE_OP_STATS = (
    "cloak.encrypts",
    "cloak.decrypts",
    "cloak.zero_fills",
    "cloak.ct_restores",
)


class WorkloadRun:
    """Deterministic outcome of one workload execution."""

    __slots__ = ("cycles", "pages")

    def __init__(self, cycles: int, pages: int):
        self.cycles = cycles
        self.pages = pages


def _page_ops(stats: Dict[str, int]) -> int:
    return sum(stats.get(key, 0) for key in PAGE_OP_STATS)


# ----------------------------------------------------------------------
# the workload basket
# ----------------------------------------------------------------------

def _wl_mb_suite() -> WorkloadRun:
    """Every syscall microbenchmark, cloaked, default iterations."""
    machine = fresh_machine(cloaked=True)
    cycles = 0
    pages = 0
    for program_cls in MICRO_SUITE:
        result = measure_program(machine, program_cls.name, ())
        cycles += result.cycles_total
        pages += _page_ops(result.stats)
    return WorkloadRun(cycles, pages)


def _wl_fileio_protected() -> WorkloadRun:
    """Protected-file streaming I/O: write then read 256 KiB through
    the cloaked mmap-emulation path (every page encrypts + decrypts)."""
    machine = fresh_machine(cloaked=True, programs=("filestreamer",))
    args = ("/secure/data.bin", "4096", str(256 * 1024))
    write = measure_program(machine, "filestreamer", ("write",) + args)
    read = measure_program(machine, "filestreamer", ("read",) + args)
    return WorkloadRun(write.cycles_total + read.cycles_total,
                       _page_ops(write.stats) + _page_ops(read.stats))


def _wl_forkstress() -> WorkloadRun:
    """Fork-heavy cloaked run: address-space copies drag every parent
    page through the encrypt path."""
    machine = fresh_machine(cloaked=True, programs=("forkstress",))
    result = measure_program(machine, "forkstress", ("4", "20000"))
    return WorkloadRun(result.cycles_total, _page_ops(result.stats))


def _wl_faults_oracle() -> WorkloadRun:
    """Subset of the differential-conformance oracle: each program runs
    native and cloaked from one spec; console transparency is asserted
    exactly as the full oracle does."""
    from repro.faults.oracle import ORACLE_SPECS, run_once

    cycles = 0
    for name in ("shaloop", "filestreamer", "forkstress"):
        spec = ORACLE_SPECS[name]
        native = run_once(spec, cloaked=False)
        cloaked = run_once(spec, cloaked=True)
        if native.console != cloaked.console:
            raise AssertionError(
                f"cloaking not transparent for {name}: "
                f"{native.console!r} != {cloaked.console!r}"
            )
        cycles += native.cycles + cloaked.cycles
    return WorkloadRun(cycles, 0)


WORKLOADS: Dict[str, Callable[[], WorkloadRun]] = {
    "mb-suite": _wl_mb_suite,
    "fileio-protected": _wl_fileio_protected,
    "forkstress": _wl_forkstress,
    "faults-oracle": _wl_faults_oracle,
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------

def time_workload(fn: Callable[[], WorkloadRun], warmup: int,
                  repeats: int) -> Tuple[float, WorkloadRun]:
    """Median wall seconds over ``repeats`` timed runs.

    Every repeat must reproduce the same virtual-cycle total — the
    harness re-checks the determinism guarantee it depends on, and a
    drifting workload is a harness error, not noise.
    """
    for __ in range(warmup):
        fn()
    times: List[float] = []
    reference: Optional[WorkloadRun] = None
    for __ in range(max(1, repeats)):
        # repro: allow(DET001) — this module *is* the wall-clock
        # harness: host time is measured here so it can be kept out of
        # every other module.  Wall seconds go to BENCH_wallclock.json
        # only, never into a virtual-cycle result.
        start = time.perf_counter()
        run = fn()
        # repro: allow(DET001) — second endpoint of the same stopwatch.
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        if reference is None:
            reference = run
        elif (run.cycles, run.pages) != (reference.cycles, reference.pages):
            raise RuntimeError(
                f"workload drifted across repeats: cycles "
                f"{reference.cycles} -> {run.cycles}"
            )
    return statistics.median(times), reference


def cycle_hash(cycles_by_workload: Dict[str, int]) -> str:
    """Digest of every workload's virtual-cycle total, the invariant a
    host-speed change must not move."""
    canonical = json.dumps(cycles_by_workload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def run(warmup: int = 1, repeats: int = 3,
        only: Optional[Tuple[str, ...]] = None,
        verbose: bool = True) -> Dict:
    """Run the basket; returns the report dict (see DEFAULT_OUT)."""
    names = tuple(only) if only else tuple(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads: {', '.join(unknown)} "
                       f"(available: {', '.join(WORKLOADS)})")
    workloads: Dict[str, Dict] = {}
    cycles_by_workload: Dict[str, int] = {}
    for name in names:
        seconds, ref = time_workload(WORKLOADS[name], warmup, repeats)
        pages_per_sec = (ref.pages / seconds) if (ref.pages and seconds > 0) \
            else None
        workloads[name] = {
            "seconds": round(seconds, 6),
            "cycles": ref.cycles,
            "pages": ref.pages,
            "pages_per_sec": round(pages_per_sec, 1)
            if pages_per_sec is not None else None,
        }
        cycles_by_workload[name] = ref.cycles
        if verbose:
            rate = (f"{pages_per_sec:10.0f} pages/s"
                    if pages_per_sec is not None else " " * 18)
            print(f"  {name:<18} {seconds:9.3f} s  {rate}  "
                  f"cycles={ref.cycles}")
    report = {
        "schema": SCHEMA,
        "warmup": warmup,
        "repeats": repeats,
        "workloads": workloads,
        "cycle_hash": cycle_hash(cycles_by_workload),
    }
    return report


def write_report(report: Dict, out: str = DEFAULT_OUT) -> Path:
    path = Path(out)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def check_against(report: Dict, committed_path: str,
                  seconds_tolerance: Optional[float] = None) -> List[str]:
    """Compare a fresh report against a committed one.

    Returns a list of human-readable problems (empty = consistent).
    Virtual cycles always gate: when the fresh report covers the same
    workload set as the committed one the ``cycle_hash`` values must
    match; for a subset run (``--workloads``) the hash would trivially
    differ, so each covered workload's cycle total is compared
    individually instead.

    Wall seconds are host-dependent by design and gate nothing unless
    ``seconds_tolerance`` (a percentage) is given — then each covered
    workload must run within that margin of its committed wall time.
    That mode exists to bound the *cost of instrumentation*: with no
    sink attached, disabled probes must not slow the simulator.
    """
    problems: List[str] = []
    try:
        committed = json.loads(Path(committed_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot read committed benchmark {committed_path}: {exc}"]
    old = committed.get("workloads", {})
    same_basket = set(old) == set(report["workloads"])
    if same_basket and committed.get("cycle_hash") != report["cycle_hash"]:
        problems.append(
            f"virtual-cycle hash drifted: committed "
            f"{committed.get('cycle_hash')} != fresh {report['cycle_hash']}"
        )
    for name, entry in report["workloads"].items():
        before = old.get(name, {}).get("cycles")
        if before is None:
            if not same_basket:
                problems.append(
                    f"  {name}: not in committed benchmark, cannot compare")
            continue
        if before != entry["cycles"]:
            problems.append(
                f"  {name}: cycles {before} -> {entry['cycles']}"
            )
    if seconds_tolerance is not None:
        for name, entry in report["workloads"].items():
            before = old.get(name, {}).get("seconds")
            if before is None or before <= 0:
                continue
            overhead = (entry["seconds"] - before) / before * 100.0
            if overhead > seconds_tolerance:
                problems.append(
                    f"  {name}: wall time {before:.3f}s -> "
                    f"{entry['seconds']:.3f}s (+{overhead:.1f}% > "
                    f"{seconds_tolerance:g}% tolerance)"
                )
    return problems


def main(argv: List[str]) -> int:
    """``python -m repro wallclock`` entry point."""
    warmup, repeats = 1, 3
    out: Optional[str] = DEFAULT_OUT
    check: Optional[str] = None
    seconds_tolerance: Optional[float] = None
    only: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--warmup":
            warmup = int(argv[i + 1]); i += 2
        elif arg == "--repeats":
            repeats = int(argv[i + 1]); i += 2
        elif arg == "--out":
            out = argv[i + 1]; i += 2
        elif arg == "--no-write":
            out = None; i += 1
        elif arg == "--check":
            check = argv[i + 1]; i += 2
        elif arg == "--seconds-tolerance":
            seconds_tolerance = float(argv[i + 1]); i += 2
        elif arg == "--workloads":
            only = [w.strip() for w in argv[i + 1].split(",") if w.strip()]
            i += 2
        else:
            print(f"unknown wallclock option: {arg}")
            print("usage: python -m repro wallclock [--warmup N] "
                  "[--repeats N] [--out PATH | --no-write] "
                  "[--check PATH] [--seconds-tolerance PCT] "
                  "[--workloads a,b,...]")
            return 2
    unknown = [name for name in only if name not in WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)} "
              f"(available: {', '.join(WORKLOADS)})")
        return 2
    print(f"## wall-clock harness (warmup {warmup}, repeats {repeats}; "
          "virtual cycles are the result, wall clock is the harness)")
    report = run(warmup=warmup, repeats=repeats,
                 only=tuple(only) or None, verbose=True)
    print(f"cycle hash: {report['cycle_hash']}")
    if out is not None:
        path = write_report(report, out)
        print(f"wrote {path}")
    if check is not None:
        problems = check_against(report, check,
                                 seconds_tolerance=seconds_tolerance)
        for problem in problems:
            print(problem)
        if problems:
            print("wallclock check: FAILED")
            return 1
        what = "cycles"
        if seconds_tolerance is not None:
            what += f" and wall time (±{seconds_tolerance:g}%)"
        print(f"wallclock check: {what} consistent with {check}")
    return 0
