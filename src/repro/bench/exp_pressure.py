"""R-F5 (extension): cloaking overhead under memory pressure.

Not a figure from the paper's evaluation proper, but the experiment
its paging protocol exists for: the guest kernel evicts application
pages on a cadence while the application keeps walking its working
set.  Each steal costs the native run a swap roundtrip; the cloaked
run pays encryption on the way out and verification + decryption on
the way back, so its overhead *grows with pressure* — and, crucially,
the application stays correct throughout (the walker checks every
page it reads).
"""

from typing import List, Tuple

from repro.bench.runner import fresh_machine, measure_program, overhead_pct
from repro.bench.tables import Table
from repro.hw.params import MachineParams

#: Reclaim cadence sweep: 0 = no pressure; smaller = harsher.
PRESSURE_LEVELS: Tuple[Tuple[str, int], ...] = (
    ("none", 0),
    ("mild", 400_000),
    ("moderate", 150_000),
    ("harsh", 60_000),
)

WALK_ARGS = ("24", "10", "1500")  # pages, rounds, alu per touch


def _run(cloaked: bool, interval: int):
    # A finer timeslice lets the reclaim cadence actually differ
    # between levels (reclaim fires at scheduling boundaries).
    params = MachineParams(reclaim_interval_cycles=interval,
                           reclaim_batch_pages=8,
                           timeslice_cycles=40_000)
    machine = fresh_machine(cloaked=cloaked, params=params)
    result = measure_program(machine, "memwalk", WALK_ARGS)
    assert "walked" in result.text, result.text
    return result


def run(verbose: bool = True) -> List[Tuple[str, int, int, float, int]]:
    """Rows: (pressure, native, cloaked, overhead %, cloaked swap-ins)."""
    rows = []
    for label, interval in PRESSURE_LEVELS:
        native = _run(False, interval)
        cloaked = _run(True, interval)
        rows.append((
            label,
            native.cycles_total,
            cloaked.cycles_total,
            overhead_pct(native.cycles_total, cloaked.cycles_total),
            cloaked.stats.get("kernel.pages_swapped_in", 0),
        ))

    if verbose:
        table = Table(
            "R-F5 (ext): overhead vs memory pressure (working-set walk)",
            ["pressure", "native", "cloaked", "overhead", "swap-ins"],
        )
        for label, n, c, pct, swapins in rows:
            table.add_row(label, n, c, f"{pct:.1f}%", swapins)
        table.show()
    return rows


if __name__ == "__main__":
    run()
