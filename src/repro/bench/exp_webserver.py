"""R-F3: web-server throughput vs client concurrency.

The server is the protected party; closed-loop clients (native — they
model remote browsers) issue requests over FIFOs.  Throughput is
requests completed per million virtual cycles.

Expected shape (paper, Apache): moderate constant-factor overhead from
the per-request syscall trail (accept/read/open/read/write ×
marshalling), flat-ish in concurrency because the single-CPU machine
is server-bound in both configurations.
"""

import hashlib
from typing import List

from repro.apps.secrets import SECRET
from repro.bench.runner import fresh_machine
from repro.bench.tables import Series

CLIENT_COUNTS = (1, 2, 4, 8)
REQUESTS_PER_CLIENT = 4
FILE_SIZE = 8 * 1024
DOC_PATH = "/www/index.bin"


def _seed_document(machine) -> None:
    vfs = machine.kernel.vfs
    inode = vfs.create_file(DOC_PATH)
    payload = (hashlib.sha256(b"document").digest() * (FILE_SIZE // 32))
    machine.kernel.fs.write(inode, 0, payload[:FILE_SIZE])


def _throughput(server_cloaked: bool, clients: int) -> float:
    machine = fresh_machine(cloaked=False,
                            programs=("webclient",))
    # The server is registered separately so only *it* is cloaked.
    from repro.apps.webserver import WebServer

    machine.register(WebServer, cloaked=server_cloaked)
    _seed_document(machine)
    vfs = machine.kernel.vfs
    vfs.mkfifo("/srv/req")
    for cid in range(clients):
        vfs.mkfifo(f"/srv/rsp{cid}")

    total_requests = clients * REQUESTS_PER_CLIENT
    snap = machine.cycles.snapshot()
    for cid in range(clients):
        machine.spawn("webclient",
                      (str(cid), str(REQUESTS_PER_CLIENT), DOC_PATH))
    server = machine.spawn("webserver", (str(total_requests),))
    machine.run()
    served_line = machine.kernel.console.text_of(server.pid)
    if f"served {total_requests}" not in served_line:
        raise RuntimeError(f"server under-served: {served_line!r}")
    cycles = machine.cycles.since(snap).total
    return total_requests / (cycles / 1_000_000.0)


def run(verbose: bool = True) -> Series:
    series = Series(
        "R-F3: web-server throughput vs concurrency (requests / Mcycle)",
        "clients",
        ["native server", "cloaked server"],
    )
    for clients in CLIENT_COUNTS:
        series.add_point(
            clients,
            _throughput(False, clients),
            _throughput(True, clients),
        )
    if verbose:
        series.show()
    return series


if __name__ == "__main__":
    run()
