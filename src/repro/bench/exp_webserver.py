"""R-F3: web-server throughput vs client concurrency — both loops.

The server is the protected party; clients model remote browsers.
Two measurement disciplines from the same seed:

* **closed loop** (the paper's style): each client issues its next
  request only after the previous response arrived.  Throughput is
  requests completed per million virtual cycles; the *implied* mean
  latency is concurrency / throughput (Little's law).
* **open loop** (:mod:`repro.serve.loadgen`): arrivals are fixed in
  advance by a seeded Poisson schedule; latency is measured from each
  request's *intended* arrival.

The gap between them is **coordinated omission**: a closed-loop client
stops offering load the moment the server queues, so its numbers
contain service time only.  The open-loop p95/p99 at a comparable
offered rate include the queueing delay the closed loop silently
discards — that difference is reported explicitly here, per
concurrency level.

Expected shape (paper, Apache): moderate constant-factor overhead from
the per-request syscall trail (accept/read/open/read/write ×
marshalling), flat-ish in concurrency because the single-CPU machine
is server-bound in both configurations; the open-loop tail multiplies
that constant factor through the queue.
"""

import hashlib
from typing import Dict

from repro.apps.webserver import WebServer
from repro.bench.runner import fresh_machine
from repro.bench.tables import Series, Table
from repro.serve.loadgen import LoadSpec, run_open_loop

CLIENT_COUNTS = (1, 2, 4, 8)
REQUESTS_PER_CLIENT = 4
FILE_SIZE = 8 * 1024
DOC_PATH = "/www/index.bin"

#: Open-loop leg: same seed for every concurrency level, mean gap
#: chosen near the closed-loop service rate so queues actually form.
OPEN_SEED = 3
OPEN_MEAN_GAP = 15_000


def _seed_document(machine) -> None:
    vfs = machine.kernel.vfs
    inode = vfs.create_file(DOC_PATH)
    payload = (hashlib.sha256(b"document").digest() * (FILE_SIZE // 32))
    machine.kernel.fs.write(inode, 0, payload[:FILE_SIZE])


def _throughput(server_cloaked: bool, clients: int) -> float:
    machine = fresh_machine(cloaked=False,
                            programs=("webclient",))
    # The server is registered separately so only *it* is cloaked.
    machine.register(WebServer, cloaked=server_cloaked)
    _seed_document(machine)
    vfs = machine.kernel.vfs
    vfs.mkfifo("/srv/req")
    for cid in range(clients):
        vfs.mkfifo(f"/srv/rsp{cid}")

    total_requests = clients * REQUESTS_PER_CLIENT
    snap = machine.cycles.snapshot()
    for cid in range(clients):
        machine.spawn("webclient",
                      (str(cid), str(REQUESTS_PER_CLIENT), DOC_PATH))
    server = machine.spawn("webserver", (str(total_requests),))
    machine.run()
    served_line = machine.kernel.console.text_of(server.pid)
    if f"served {total_requests}" not in served_line:
        raise RuntimeError(f"server under-served: {served_line!r}")
    cycles = machine.cycles.since(snap).total
    return total_requests / (cycles / 1_000_000.0)


def _open_loop(server_cloaked: bool, connections: int) -> Dict:
    spec = LoadSpec(
        app="webserver",
        requests=connections * REQUESTS_PER_CLIENT,
        mean_gap=OPEN_MEAN_GAP,
        arrival="poisson",
        connections=connections,
        keys=4,
        file_size=FILE_SIZE,
        seed=OPEN_SEED,
    )
    result = run_open_loop(spec, cloaked=server_cloaked)
    if result["completed"] != spec.requests:
        raise RuntimeError(
            f"open loop under-completed: {result['completed']}"
            f"/{spec.requests}")
    return result


def run(verbose: bool = True) -> Dict:
    closed = Series(
        "R-F3: web-server throughput vs concurrency "
        "(requests / Mcycle, closed loop)",
        "clients",
        ["native server", "cloaked server"],
    )
    open_series = Series(
        "R-F3: open-loop latency vs concurrency (cycles; same seed, "
        "Poisson arrivals)",
        "connections",
        ["native p50", "native p95", "cloaked p50", "cloaked p95"],
    )
    gap = Table(
        "R-F3: coordinated-omission gap (closed-loop implied mean vs "
        "open-loop p95, native server, cycles)",
        ["clients", "closed implied", "open p95", "hidden queueing x"],
    )
    for clients in CLIENT_COUNTS:
        native_tp = _throughput(False, clients)
        cloaked_tp = _throughput(True, clients)
        closed.add_point(clients, native_tp, cloaked_tp)

        native_open = _open_loop(False, clients)
        cloaked_open = _open_loop(True, clients)
        open_series.add_point(
            clients,
            native_open["latency"]["p50"],
            native_open["latency"]["p95"],
            cloaked_open["latency"]["p50"],
            cloaked_open["latency"]["p95"],
        )
        # Little's law on the closed-loop figures: mean latency =
        # concurrency / throughput.  The open-loop p95 at the same
        # concurrency includes the queueing the closed loop omits.
        implied = round(clients * 1_000_000.0 / native_tp, 1)
        p95 = native_open["latency"]["p95"]
        gap.add_row(clients, implied, p95,
                    round(p95 / implied, 2) if implied else 0.0)

    if verbose:
        closed.show()
        open_series.show()
        gap.show()
        print("coordinated omission: the closed-loop client waits for "
              "each response before sending again, so server queueing "
              "suppresses *offered load* instead of appearing as "
              "latency; the open-loop schedule keeps offering, and the "
              "tail shows what clients would actually experience.")
    return {"closed": closed, "open": open_series, "gap": gap}


if __name__ == "__main__":
    run()
