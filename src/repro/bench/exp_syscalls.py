"""R-T2: syscall microbenchmark latencies, native vs cloaked.

The lmbench-style table.  Per-iteration cost is whole-program cycles
divided by the iteration count, after subtracting the same program's
fixed startup (measured via a zero-extra-iteration calibration run of
the empty loop).  Expected shape (paper): the null call grows by a
small constant (world switches + CTC); buffer-carrying calls add
marshalling copies; fork/exec are the blowups.
"""

from typing import Dict, List, Tuple

from repro.apps.microbench import MICRO_SUITE
from repro.bench.runner import fresh_machine, measure_program, ratio
from repro.bench.tables import Table


def _per_iteration(name: str, iterations: int, cloaked: bool) -> float:
    machine = fresh_machine(cloaked=cloaked)
    full = measure_program(machine, name, (str(iterations),)).cycles_total
    # Calibration: the same program with a minimal iteration count.
    machine = fresh_machine(cloaked=cloaked)
    base = measure_program(machine, name, ("1",)).cycles_total
    return max(0.0, (full - base) / max(1, iterations - 1))


def run(verbose: bool = True, iterations: int = 40) -> List[Tuple[str, float, float, float]]:
    """Returns rows (benchmark, native cycles, cloaked cycles, ratio)."""
    rows = []
    for program_cls in MICRO_SUITE:
        # Respect each benchmark's own default when smaller (fork is
        # expensive enough at 8 iterations).
        count = min(iterations, program_cls.default_iterations)
        native = _per_iteration(program_cls.name, count, cloaked=False)
        cloaked = _per_iteration(program_cls.name, count, cloaked=True)
        rows.append((program_cls.name, native, cloaked,
                     ratio(native, cloaked)))

    if verbose:
        table = Table(
            "R-T2: syscall microbenchmarks (virtual cycles per operation)",
            ["benchmark", "native", "cloaked", "slowdown"],
        )
        for name, native, cloaked, slowdown in rows:
            table.add_row(name, native, cloaked, f"{slowdown:.2f}x")
        table.show()
    return rows


if __name__ == "__main__":
    run()
