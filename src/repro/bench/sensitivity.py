"""R-A4: cost-model sensitivity analysis.

A simulation-based reproduction owes its readers an answer to "how
much do your conclusions depend on the numbers you picked?".  This
experiment re-runs representative workloads while scaling the crypto
costs (the least portable part of the model: software AES in 2008 vs
AES-NI vs future accelerators) and the world-switch costs (binary
translation vs hardware virtualization), and reports which qualitative
conclusions survive.

The conclusions under test:

* C1 — compute-bound overhead stays small;
* C2 — fork is the worst syscall by a wide margin;
* C3 — cloaked file streaming is crypto-bound;
* C4 — multi-shadowing beats flush-per-switch.
"""

from typing import Dict, List, Tuple

from repro.bench.runner import fresh_machine, measure_program
from repro.bench.tables import Table
from repro.core.multishadow import POLICY_FLUSH
from repro.core.vmm import VMMConfig
from repro.hw.params import MachineParams

#: (label, crypto multiplier, world-switch multiplier)
SCENARIOS: Tuple[Tuple[str, float, float], ...] = (
    ("2008 software crypto (baseline)", 1.0, 1.0),
    ("hw crypto (AES-NI-like, 1/8 cost)", 0.125, 1.0),
    ("slow crypto (4x cost)", 4.0, 1.0),
    ("cheap world switch (hw virt, 1/4)", 1.0, 0.25),
    ("hw crypto + cheap switch", 0.125, 0.25),
)


def _params(crypto_mult: float, switch_mult: float) -> MachineParams:
    base = MachineParams()
    costs = base.costs
    return base.with_costs(
        page_encrypt=max(1, int(costs.page_encrypt * crypto_mult)),
        page_decrypt=max(1, int(costs.page_decrypt * crypto_mult)),
        page_hash=max(1, int(costs.page_hash * crypto_mult)),
        ciphertext_restore=max(1, int(costs.ciphertext_restore * crypto_mult)),
        world_switch=max(1, int(costs.world_switch * switch_mult)),
        hypercall=max(1, int(costs.hypercall * switch_mult)),
        ctc_save=max(1, int(costs.ctc_save * switch_mult)),
        ctc_restore=max(1, int(costs.ctc_restore * switch_mult)),
    )


def _measure_scenario(params: MachineParams) -> Dict[str, float]:
    """Ratios of interest under one cost configuration."""
    out: Dict[str, float] = {}

    # C1: compute overhead (matmul cloaked/native).
    native = measure_program(fresh_machine(False, params=params), "matmul")
    cloaked = measure_program(fresh_machine(True, params=params), "matmul")
    out["compute overhead %"] = 100.0 * (
        cloaked.cycles_total - native.cycles_total) / native.cycles_total

    # C2: fork slowdown.
    native = measure_program(fresh_machine(False, params=params),
                             "mb-fork", ("6",))
    cloaked = measure_program(fresh_machine(True, params=params),
                              "mb-fork", ("6",))
    out["fork slowdown x"] = cloaked.cycles_total / native.cycles_total

    # C3: protected-file streaming slowdown vs plain streaming (cloaked).
    machine = fresh_machine(True, params=params, programs=("filestreamer",))
    plain = measure_program(machine, "filestreamer",
                            ("write", "/p.bin", "4096", "65536"))
    machine = fresh_machine(True, params=params, programs=("filestreamer",))
    secure = measure_program(machine, "filestreamer",
                             ("write", "/secure/p.bin", "4096", "65536"))
    out["protected-file cost x"] = secure.cycles_total / plain.cycles_total

    # C4: flush-policy penalty on a syscall loop.
    tagged = measure_program(
        fresh_machine(True, params=params), "mb-getpid", ("30",))
    flush = measure_program(
        fresh_machine(True, params=params,
                      vmm_config=VMMConfig(shadow_policy=POLICY_FLUSH)),
        "mb-getpid", ("30",))
    out["flush penalty x"] = flush.cycles_total / tagged.cycles_total
    return out


def run(verbose: bool = True) -> Dict[str, Dict[str, float]]:
    results = {}
    for label, crypto_mult, switch_mult in SCENARIOS:
        results[label] = _measure_scenario(_params(crypto_mult, switch_mult))

    if verbose:
        metrics = list(next(iter(results.values())))
        table = Table("R-A4: cost-model sensitivity", ["scenario"] + metrics)
        for label, values in results.items():
            table.add_row(label, *(f"{values[m]:.2f}" for m in metrics))
        table.show()
        print("Conclusions under test: C1 compute overhead small; "
              "C2 fork worst; C3 protected files crypto-bound; "
              "C4 multi-shadowing wins.")
    return results


if __name__ == "__main__":
    run()
