"""Ablations R-A1..R-A3: the design choices DESIGN.md calls out.

* R-A1 — lazy (fault-driven) vs eager re-encryption on every switch
  out of a cloaked context.  Eager pays full crypto per kernel entry;
  lazy pays only for pages the system actually touches.
* R-A2 — full cloaking vs integrity-only (MAC, no cipher): splits the
  crypto bill between privacy and integrity.
* R-A3 — tagged multi-shadowing vs a single shadow flushed on every
  view switch: the cost multi-shadowing exists to avoid.
"""

from typing import Dict, List, Tuple

from repro.bench.runner import fresh_machine, measure_program
from repro.bench.tables import Table
from repro.core.cloak import CloakConfig
from repro.core.multishadow import POLICY_FLUSH, POLICY_TAGGED
from repro.core.vmm import VMMConfig

#: Workloads chosen to stress each mechanism: pure compute, a
#: syscall loop (world switches), crypto-heavy paths (protected file
#: I/O and fork re-encryption), and context-switch pressure.
WORKLOADS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("matmul", ()),
    ("mb-getpid", ("30",)),
    ("seqwrite-secure", ()),
    ("seqread-secure", ()),
    ("mb-fork", ("6",)),
    ("mb-ctxsw", ("40",)),
)


_STREAM_ARGS = ("/secure/abl.bin", "4096", str(64 * 1024))


def _measure(config: VMMConfig) -> Dict[str, int]:
    cycles: Dict[str, int] = {}
    for name, argv in WORKLOADS:
        machine = fresh_machine(cloaked=True, vmm_config=config)
        if name == "seqwrite-secure":
            name_actual, argv = "filestreamer", ("write",) + _STREAM_ARGS
        elif name == "seqread-secure":
            # Seed the protected file (unmeasured preparatory run).
            measure_program(machine, "filestreamer",
                            ("write",) + _STREAM_ARGS)
            name_actual, argv = "filestreamer", ("read",) + _STREAM_ARGS
        else:
            name_actual = name
        cycles[name] = measure_program(machine, name_actual, argv).cycles_total
    return cycles


def run_lazy_vs_eager(verbose: bool = True) -> Dict[str, Dict[str, int]]:
    """R-A1."""
    lazy = _measure(VMMConfig(eager_reencrypt=False))
    eager = _measure(VMMConfig(eager_reencrypt=True))
    if verbose:
        table = Table("R-A1: lazy vs eager re-encryption (virtual cycles)",
                      ["workload", "lazy (paper)", "eager", "eager/lazy"])
        for name in lazy:
            table.add_row(name, lazy[name], eager[name],
                          f"{eager[name] / lazy[name]:.2f}x")
        table.show()
    return {"lazy": lazy, "eager": eager}


def run_integrity_modes(verbose: bool = True) -> Dict[str, Dict[str, int]]:
    """R-A2."""
    full = _measure(VMMConfig())
    mac_only = _measure(VMMConfig(cloak=CloakConfig(integrity_only=True)))
    no_clean = _measure(
        VMMConfig(cloak=CloakConfig(clean_page_optimization=False))
    )
    if verbose:
        table = Table(
            "R-A2: protection modes (virtual cycles)",
            ["workload", "full cloaking", "integrity-only",
             "full w/o clean-page opt"],
        )
        for name in full:
            table.add_row(name, full[name], mac_only[name], no_clean[name])
        table.show()
    return {"full": full, "integrity_only": mac_only,
            "no_clean_opt": no_clean}


def run_shadow_policy(verbose: bool = True) -> Dict[str, Dict[str, int]]:
    """R-A3."""
    tagged = _measure(VMMConfig(shadow_policy=POLICY_TAGGED))
    flush = _measure(VMMConfig(shadow_policy=POLICY_FLUSH))
    if verbose:
        table = Table(
            "R-A3: multi-shadowing vs flush-per-switch (virtual cycles)",
            ["workload", "tagged (multi-shadow)", "flush-per-switch",
             "flush/tagged"],
        )
        for name in tagged:
            table.add_row(name, tagged[name], flush[name],
                          f"{flush[name] / tagged[name]:.2f}x")
        table.show()
    return {"tagged": tagged, "flush": flush}


def run_all(verbose: bool = True) -> Dict[str, Dict]:
    return {
        "lazy_vs_eager": run_lazy_vs_eager(verbose),
        "integrity_modes": run_integrity_modes(verbose),
        "shadow_policy": run_shadow_policy(verbose),
    }


if __name__ == "__main__":
    run_all()
