"""R-T7: cluster serving — capacity scaling and tail-latency overhead.

The paper's performance story is told per machine; this experiment
asks the production question: when the protected webserver is sharded
across N machines behind a consistent-hash ring and driven by an
**open-loop** arrival schedule (:mod:`repro.serve`), how does capacity
per shard scale with N, and what does cloaking cost *at the tail*
(p95/p99), where queueing amplifies per-request overhead?

Expected shape: capacity per shard stays roughly flat in N (shards are
independent machines; the ring splits the key population, so each
shard sees ~1/N of the offered load), and the cloaked/native ratio
grows toward the tail — the constant-factor service-time overhead
shifts the whole queueing curve, so p99 pays more than p50.

Also the home of ``python -m repro serve`` (:func:`serve_main`), the
CLI over :func:`repro.serve.cluster.run_cluster`.
"""

import sys
from dataclasses import replace
from typing import Dict, List

from repro.bench.tables import Series, Table
from repro.serve.cluster import ClusterConfig, report_json, run_cluster
from repro.serve.loadgen import APPS, ARRIVALS, LoadSpec

SHARD_COUNTS = (1, 2, 4)
#: Shard count at which the tail-latency table is reported.
TAIL_SHARDS = 4

#: Offered load scales with the cluster: ``requests`` grows and the
#: mean inter-arrival gap shrinks linearly in N, so every shard sees
#: the same offered rate at every cluster size — the scaling question
#: is then "does capacity per shard stay flat", not "what happens when
#: a fixed trickle is split N ways".
REQUESTS_PER_SHARD = 16
BASE_MEAN_GAP = 15_000

SPEC = LoadSpec(
    app="webserver",
    arrival="poisson",
    connections=4,
    deadline=240_000,
    keys=64,
    file_size=2048,
    seed=11,
)


def _cluster(shards: int, cloaked: bool) -> Dict:
    spec = replace(SPEC, requests=REQUESTS_PER_SHARD * shards,
                   mean_gap=max(1, BASE_MEAN_GAP // shards))
    # Inline mode: the multiprocess path is byte-identical by
    # construction (tests/serve pins it), so the benchmark takes the
    # cheap deterministic route.
    return run_cluster(ClusterConfig(spec=spec, shards=shards,
                                     cloaked=cloaked, inline=True,
                                     attach_metrics=False))


def run(verbose: bool = True) -> Dict:
    reports: Dict[str, Dict] = {}
    scaling = Series(
        "R-T7: cluster capacity per shard vs shard count "
        "(requests / Mcycle / shard, open-loop)",
        "shards",
        ["native", "cloaked", "ratio"],
    )
    for shards in SHARD_COUNTS:
        native = _cluster(shards, cloaked=False)
        cloaked = _cluster(shards, cloaked=True)
        reports[f"native:{shards}"] = native
        reports[f"cloaked:{shards}"] = cloaked
        cap_n = native["cluster"]["capacity_per_shard"]
        cap_c = cloaked["cluster"]["capacity_per_shard"]
        scaling.add_point(shards, cap_n, cap_c,
                          round(cap_n / cap_c, 3) if cap_c else 0.0)

    tail = Table(
        f"R-T7: cloaking overhead per latency percentile "
        f"({TAIL_SHARDS} shards, cycles)",
        ["percentile", "native", "cloaked", "ratio"],
    )
    lat_n = reports[f"native:{TAIL_SHARDS}"]["cluster"]["latency"]
    lat_c = reports[f"cloaked:{TAIL_SHARDS}"]["cluster"]["latency"]
    for quantile in ("p50", "p95", "p99", "p999"):
        ratio = (round(lat_c[quantile] / lat_n[quantile], 3)
                 if lat_n[quantile] else 0.0)
        tail.add_row(quantile, lat_n[quantile], lat_c[quantile], ratio)

    if verbose:
        scaling.show()
        tail.show()
        print("coordinated-omission note: latencies are measured from "
              "each request's *intended* arrival (open loop), so "
              "queueing behind a slow shard is in the percentiles — "
              "closed-loop numbers (R-F3) cannot show this.")
    return {"scaling": scaling, "tail": tail, "reports": reports}


# ---------------------------------------------------------------------------
# ``python -m repro serve``
# ---------------------------------------------------------------------------

_USAGE = """\
usage: python -m repro serve [options]

Run one open-loop cluster serving experiment and print the merged
deterministic report as JSON (byte-identical across --inline and
multiprocess runs, worker counts, and hosts).

options:
  --shards N        shard count (default 4)
  --app NAME        webserver | kvstore (default webserver)
  --cloaked         run the protected server under the VMM shim
  --requests N      scheduled arrivals (default 64)
  --mean-gap N      mean inter-arrival gap, cycles (default 12000)
  --arrival KIND    poisson | bursty | uniform (default poisson)
  --connections N   multiplexed logical connections (default 4)
  --deadline N      per-request SLO deadline, cycles (default 240000)
  --seed N          schedule seed (default 0)
  --workers N       max concurrent worker processes (default: shards)
  --inline          run every shard in-process (no forking)
  --kill LIST       comma-separated shards whose workers die mid-run
  --no-metrics      skip the merged repro.obs metrics section
  --out PATH        also write the report JSON to PATH
  --summary         print a short human summary instead of the JSON
"""


def _flag_value(args: List[str], name: str, default=None):
    if name in args:
        return args[args.index(name) + 1]
    return default


def serve_main(args: List[str]) -> int:
    if "--help" in args or "-h" in args:
        print(_USAGE)
        return 0
    app = _flag_value(args, "--app", "webserver")
    arrival = _flag_value(args, "--arrival", "poisson")
    if app not in APPS or arrival not in ARRIVALS:
        print(_USAGE, file=sys.stderr)
        return 2
    kill_arg = _flag_value(args, "--kill", "")
    kill = tuple(int(s) for s in kill_arg.split(",") if s.strip())
    config = ClusterConfig(
        spec=LoadSpec(
            app=app,
            requests=int(_flag_value(args, "--requests", 64)),
            mean_gap=int(_flag_value(args, "--mean-gap", 12_000)),
            arrival=arrival,
            connections=int(_flag_value(args, "--connections", 4)),
            deadline=int(_flag_value(args, "--deadline", 240_000)),
            seed=int(_flag_value(args, "--seed", 0)),
        ),
        shards=int(_flag_value(args, "--shards", 4)),
        cloaked="--cloaked" in args,
        workers=int(_flag_value(args, "--workers", 0)),
        inline="--inline" in args,
        kill_shards=kill,
        attach_metrics="--no-metrics" not in args,
    )
    report = run_cluster(config)
    rendered = report_json(report)
    out = _flag_value(args, "--out")
    if out is not None:
        with open(out, "w") as sink:
            sink.write(rendered)
        print(f"report written: {out}", file=sys.stderr)
    if "--summary" in args:
        cluster = report["cluster"]
        print(f"serve: {config.spec.app} shards={config.shards} "
              f"cloaked={config.cloaked} arrival={config.spec.arrival}")
        print(f"  completed {cluster['completed']}/{cluster['requests']} "
              f"errors {cluster['errors']} slo_misses "
              f"{cluster['slo_misses']}")
        print(f"  latency p50/p95/p99: {cluster['latency']['p50']} / "
              f"{cluster['latency']['p95']} / {cluster['latency']['p99']}")
        print(f"  capacity/shard: {cluster['capacity_per_shard']} "
              f"req/Mcycle")
        if report["degraded"]:
            print(f"  DEGRADED: dead shards {report['dead_shards']}, "
                  f"{report['rerouted_requests']} requests re-routed")
    else:
        sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":
    run()
