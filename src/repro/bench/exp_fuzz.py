"""R-T6: differential fuzzing campaign (extension).

The transparency, determinism, and hygiene claims of R-T2..R-T5 are
only as strong as the workloads behind them — 41 hand-written
programs.  This experiment re-asserts the same invariants over a
*generated* population: a seeded campaign of self-checking guest
programs (:mod:`repro.gen`) spanning weighted mixes of file I/O,
mmap/brk, fork/exec trees, pipes, signal storms, and secret-marker
placement, each run native-vs-cloaked under the differential oracle
with a rotating fault-injection arm.

Headline claims:

* zero divergences — every generated program's architectural state is
  identical native and cloaked, with no violations and no marker
  exposure;
* full surface — the campaign's static footprint covers every syscall
  in the guest ABI, and its cloaked runs walk past every registered
  fault-injection site;
* containment — each rotating armed site classifies RECOVERED or
  DETECTED, never EXPOSED or CORRUPTED.
"""

from typing import Optional

from repro.bench.tables import Table
from repro.gen.driver import CampaignReport, run_campaign

CAMPAIGN_SEED = 0
CAMPAIGN_COUNT = 64


def run(verbose: bool = True, seed: int = CAMPAIGN_SEED,
        count: int = CAMPAIGN_COUNT,
        fault_sites: bool = True) -> CampaignReport:
    report = run_campaign(campaign_seed=seed, count=count,
                          fault_sites=fault_sites)
    if verbose:
        table = Table(
            f"R-T6: differential fuzzing campaign "
            f"(seed {seed}, {count} generated programs)",
            ["preset", "programs", "ops", "determinism runs", "fault arms",
             "contained", "failures"],
        )
        presets = sorted(set(slot.preset for slot in report.slots))
        for preset in presets:
            slots = [s for s in report.slots if s.preset == preset]
            armed = [s for s in slots if s.fault_site is not None]
            table.add_row(
                preset, len(slots), sum(s.ops for s in slots),
                sum(1 for s in slots if s.determinism_checked),
                len(armed),
                sum(1 for s in armed
                    if s.fault_outcome in ("RECOVERED", "DETECTED")),
                sum(1 for s in slots if not s.ok),
            )
        table.show()
        print(f"  syscall coverage: {len(report.syscalls)} reached, "
              f"missing {report.syscalls_missing() or 'none'}")
        print(f"  fault-site coverage: {len(report.fault_sites)}/14, "
              f"missing {report.fault_sites_missing() or 'none'}")
        print(f"  probe coverage: {len(report.probes)} event kinds")
        print(f"  report digest: {report.digest()}")
        for slot in report.failures():
            print(f"  FAILURE slot {slot.slot} [{slot.status}] "
                  f"{slot.detail}\n    replay: {slot.replay}")
    return report


def zero_divergences(report: CampaignReport) -> bool:
    """The headline claim: the generated population finds nothing."""
    return report.ok


if __name__ == "__main__":
    run()
