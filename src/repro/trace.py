"""Event tracing: observability for cloaking behaviour.

A downstream user debugging "why is my cloaked app slow?" needs to see
*which* pages are thrashing between views and *which* syscalls are
paying marshalling.  The tracer taps the machine's stat counters and
cycle ledger at slice granularity and the cloak engine's transitions
at event granularity, then renders a timeline and per-page summary.

Usage::

    machine = Machine.build()
    tracer = Tracer.attach(machine)
    ...run...
    print(tracer.render_summary())

Attaching wraps a handful of methods; detaching restores them.  The
tracer is a development tool — nothing in the TCB depends on it.
"""

from typing import Dict, List, NamedTuple, Optional

from repro.machine import Machine


class TraceEvent(NamedTuple):
    """One cloaking-relevant event."""

    cycle: int
    kind: str        # decrypt | encrypt | zero-fill | ct-restore | violation
    owner: int       # domain id
    vpn: int
    gpfn: int


class Tracer:
    """Records cloaking transitions with virtual timestamps."""

    def __init__(self, machine: Machine):
        self._machine = machine
        self.events: List[TraceEvent] = []
        self._originals: Dict[str, object] = {}
        self._attached = False

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, machine: Machine) -> "Tracer":
        tracer = cls(machine)
        tracer._install()
        return tracer

    def _install(self) -> None:
        if self._attached:
            raise RuntimeError("tracer already attached")
        engine = self._machine.vmm.cloak
        cycles = self._machine.cycles
        record = self.events.append

        originals = {
            "_verify_and_decrypt": engine._verify_and_decrypt,
            "_encrypt": engine._encrypt,
            "_zero_fill": engine._zero_fill,
            "resolve_system_access": engine.resolve_system_access,
        }

        def traced_decrypt(domain, md, gpfn,
                           _orig=originals["_verify_and_decrypt"]):
            _orig(domain, md, gpfn)
            record(TraceEvent(cycles.total, "decrypt", md.owner_id,
                              md.vpn, gpfn))

        def traced_encrypt(md, gpfn, _orig=originals["_encrypt"]):
            _orig(md, gpfn)
            record(TraceEvent(cycles.total, "encrypt", md.owner_id,
                              md.vpn, gpfn))

        def traced_zero(md, gpfn, _orig=originals["_zero_fill"]):
            _orig(md, gpfn)
            record(TraceEvent(cycles.total, "zero-fill", md.owner_id,
                              md.vpn, gpfn))

        def traced_system(md, gpfn,
                          _orig=originals["resolve_system_access"],
                          _enc=originals["_encrypt"]):
            before = len(self.events)
            _orig(md, gpfn)
            # The encrypt path recorded itself; a cached-ciphertext
            # restore did not — detect and record it.
            if len(self.events) == before:
                record(TraceEvent(cycles.total, "ct-restore", md.owner_id,
                                  md.vpn, gpfn))

        engine._verify_and_decrypt = traced_decrypt
        engine._encrypt = traced_encrypt
        engine._zero_fill = traced_zero
        engine.resolve_system_access = traced_system
        self._originals = originals
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        engine = self._machine.vmm.cloak
        # The wrappers live as instance attributes shadowing the class
        # methods; deleting them restores the originals exactly.
        for name in ("_verify_and_decrypt", "_encrypt", "_zero_fill",
                     "resolve_system_access"):
            engine.__dict__.pop(name, None)
        self._attached = False

    def __enter__(self) -> "Tracer":
        if not self._attached:
            self._install()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def hottest_pages(self, top: int = 10) -> List[tuple]:
        """Pages with the most transitions: the thrash list a user
        should move out of the kernel's way (or stop sharing)."""
        per_page: Dict[tuple, int] = {}
        for event in self.events:
            key = (event.owner, event.vpn)
            per_page[key] = per_page.get(key, 0) + 1
        ranked = sorted(per_page.items(), key=lambda kv: -kv[1])
        return [(owner, vpn, count) for (owner, vpn), count in ranked[:top]]

    def crypto_cycle_estimate(self) -> int:
        """Rough cycles attributable to traced transitions."""
        costs = self._machine.params.costs
        per_kind = {
            "decrypt": costs.page_decrypt + costs.page_hash,
            "encrypt": costs.page_encrypt + costs.page_hash,
            "zero-fill": costs.zero_fill,
            "ct-restore": costs.ciphertext_restore,
        }
        return sum(per_kind.get(event.kind, 0) for event in self.events)

    def render_summary(self) -> str:
        lines = ["cloaking trace summary", "======================"]
        counts = self.counts()
        if not counts:
            return "\n".join(lines + ["(no cloaking transitions recorded)"])
        for kind in sorted(counts):
            lines.append(f"{kind:12s} {counts[kind]:6d}")
        lines.append(f"{'est. cycles':12s} {self.crypto_cycle_estimate():6d}")
        lines.append("")
        lines.append("hottest pages (owner, vpn, transitions):")
        for owner, vpn, count in self.hottest_pages(5):
            lines.append(f"  domain {owner}  vpn {vpn:#010x}  x{count}")
        return "\n".join(lines)

    def render_timeline(self, width: int = 72) -> str:
        """ASCII timeline: one lane per event kind, bucketed cycles."""
        if not self.events:
            return "(empty trace)"
        start = self.events[0].cycle
        end = self.events[-1].cycle
        span = max(1, end - start)
        kinds = sorted({event.kind for event in self.events})
        lanes = {kind: [" "] * width for kind in kinds}
        for event in self.events:
            slot = min(width - 1, (event.cycle - start) * width // span)
            lanes[event.kind][slot] = "*"
        lines = [f"cycles {start:,} .. {end:,}"]
        for kind in kinds:
            lines.append(f"{kind:>10s} |{''.join(lanes[kind])}|")
        return "\n".join(lines)
