"""Event tracing: observability for cloaking behaviour.

.. deprecated::
    ``Tracer`` predates :mod:`repro.obs` and survives as a thin
    compatibility shim over the probe bus.  New code should attach a
    :class:`repro.obs.profile.CycleProfiler` (ledger attribution and
    thrash reports) or a :class:`repro.obs.export.TraceRecorder`
    (full event streams, Perfetto export) directly — see
    docs/OBSERVABILITY.md.

A downstream user debugging "why is my cloaked app slow?" needs to see
*which* pages are thrashing between views.  Historically the tracer
monkey-patched the cloak engine's transition methods; it is now a
probe-bus sink subscribed to the ``cloak.*`` probes the engine emits
natively, so attaching no longer mutates the engine at all.  The
public API (events, counts, summaries) is unchanged.

Usage::

    machine = Machine.build()
    tracer = Tracer.attach(machine)
    ...run...
    print(tracer.render_summary())

The tracer is a development tool — nothing in the TCB depends on it.
"""

from typing import Dict, List, NamedTuple

from repro.machine import Machine
from repro.obs import bus


class TraceEvent(NamedTuple):
    """One cloaking-relevant event."""

    cycle: int
    kind: str        # decrypt | encrypt | zero-fill | ct-restore | violation
    owner: int       # domain id
    vpn: int
    gpfn: int


#: cloak.* probe name -> legacy event kind.
_KIND_OF_PROBE = {
    "cloak.decrypt": "decrypt",
    "cloak.encrypt": "encrypt",
    "cloak.zero_fill": "zero-fill",
    "cloak.ct_restore": "ct-restore",
}


class Tracer:
    """Records cloaking transitions with virtual timestamps."""

    def __init__(self, machine: Machine):
        self._machine = machine
        self.events: List[TraceEvent] = []
        self._attached = False

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, machine: Machine) -> "Tracer":
        tracer = cls(machine)
        tracer._install()
        return tracer

    def _install(self) -> None:
        if self._attached:
            raise RuntimeError("tracer already attached")
        bus.attach(self, self._machine.cycles)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        bus.detach(self)
        self._attached = False

    def __enter__(self) -> "Tracer":
        if not self._attached:
            self._install()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # sink protocol (called by the probe bus)
    # ------------------------------------------------------------------

    def on_event(self, name: str, cycle: int, args: tuple) -> None:
        kind = _KIND_OF_PROBE.get(name)
        if kind is None:
            return
        owner, vpn, gpfn = args[0], args[1], args[2]
        self.events.append(TraceEvent(cycle, kind, owner, vpn, gpfn))

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def hottest_pages(self, top: int = 10) -> List[tuple]:
        """Pages with the most transitions: the thrash list a user
        should move out of the kernel's way (or stop sharing)."""
        per_page: Dict[tuple, int] = {}
        for event in self.events:
            key = (event.owner, event.vpn)
            per_page[key] = per_page.get(key, 0) + 1
        ranked = sorted(per_page.items(), key=lambda kv: -kv[1])
        return [(owner, vpn, count) for (owner, vpn), count in ranked[:top]]

    def crypto_cycle_estimate(self) -> int:
        """Rough cycles attributable to traced transitions."""
        costs = self._machine.params.costs
        per_kind = {
            "decrypt": costs.page_decrypt + costs.page_hash,
            "encrypt": costs.page_encrypt + costs.page_hash,
            "zero-fill": costs.zero_fill,
            "ct-restore": costs.ciphertext_restore,
        }
        return sum(per_kind.get(event.kind, 0) for event in self.events)

    def render_summary(self) -> str:
        lines = ["cloaking trace summary", "======================"]
        counts = self.counts()
        if not counts:
            return "\n".join(lines + ["(no cloaking transitions recorded)"])
        for kind in sorted(counts):
            lines.append(f"{kind:12s} {counts[kind]:6d}")
        lines.append(f"{'est. cycles':12s} {self.crypto_cycle_estimate():6d}")
        lines.append("")
        lines.append("hottest pages (owner, vpn, transitions):")
        for owner, vpn, count in self.hottest_pages(5):
            lines.append(f"  domain {owner}  vpn {vpn:#010x}  x{count}")
        return "\n".join(lines)

    def render_timeline(self, width: int = 72) -> str:
        """ASCII timeline: one lane per event kind, bucketed cycles."""
        if not self.events:
            return "(empty trace)"
        start = self.events[0].cycle
        end = self.events[-1].cycle
        span = max(1, end - start)
        kinds = sorted({event.kind for event in self.events})
        lanes = {kind: [" "] * width for kind in kinds}
        for event in self.events:
            slot = min(width - 1, (event.cycle - start) * width // span)
            lanes[event.kind][slot] = "*"
        lines = [f"cycles {start:,} .. {end:,}"]
        for kind in kinds:
            lines.append(f"{kind:>10s} |{''.join(lanes[kind])}|")
        return "\n".join(lines)
