"""Greedy delta-debugging shrinker for failing generated programs.

A failure is replayable from its ``(seed, spec)`` pair, and the spec's
``drop`` set removes structural ops *before* the dependency-closing
sweep — so shrinking is a search over subsets of structural indices
that still reproduce the failure.  The search is classic chunked
ddmin: try removing halves, then quarters, ... down to single ops,
keeping any removal that preserves the original failure *kind*
(a divergence must stay a divergence; sliding into an unrelated
generator crash would shrink to the wrong bug).

The result is locally minimal — no single remaining structural op can
be dropped — and carries a paste-able replay token.
"""

from typing import Callable, List, Optional, Tuple

from repro.faults.oracle import AppSpec, _diff_state, _pressure_params, \
    run_once
from repro.gen.generator import build_program, generate
from repro.gen.spec import GenSpec
from repro.machine import Machine

#: Failure kinds the reduced predicate can reproduce (and therefore
#: shrink).  Nondeterminism and fault-escape need re-runs / armed
#: plans and are reported unshrunk.
FAILURE_KINDS = ("genfail", "divergence", "exposure", "violation")


def check_failure(seed: int, spec: GenSpec,
                  cloak_tweak: Optional[Callable[[Machine], None]] = None,
                  ) -> Tuple[Optional[str], str]:
    """The reduced failure predicate: one native run, one cloaked run.

    Returns ``(kind, detail)`` with ``kind`` from
    :data:`FAILURE_KINDS`, or ``(None, "")`` when the pair is healthy.
    """
    plan = generate(seed, spec)
    app = AppSpec(
        name=plan.name, argv=(), files=plan.files, marker=plan.marker,
        params=_pressure_params if spec.pressure else None,
        program=build_program(plan),
    )
    native = run_once(app, cloaked=False)
    if native.exit_code != 0:
        return "genfail", (f"native exit {native.exit_code}: "
                           f"{native.console[-120:].decode(errors='replace')}")
    cloaked = run_once(app, cloaked=True, tweak=cloak_tweak)
    if cloaked.exposed:
        return "exposure", "marker kernel-visible after cloaked run"
    if cloaked.violations:
        return "violation", f"fault-free violations: {cloaked.violations}"
    if native.state() != cloaked.state():
        return "divergence", _diff_state(native, cloaked)
    return None, ""


class ShrinkResult:
    """A locally minimal reproducer for one failure."""

    __slots__ = ("seed", "spec", "kind", "detail", "ops_before", "ops_after",
                 "checks")

    def __init__(self, seed: int, spec: GenSpec, kind: str, detail: str,
                 ops_before: int, ops_after: int, checks: int):
        self.seed = seed
        #: The shrunk spec: the original with a maximal ``drop`` set.
        self.spec = spec
        self.kind = kind
        self.detail = detail
        #: Emitted op counts (after the dependency sweep), full vs shrunk.
        self.ops_before = ops_before
        self.ops_after = ops_after
        #: Predicate evaluations the search spent.
        self.checks = checks

    @property
    def replay(self) -> str:
        return f"{self.seed}:{self.spec.to_json()}"

    def __repr__(self) -> str:
        return (f"ShrinkResult({self.kind}, ops {self.ops_before}->"
                f"{self.ops_after}, checks={self.checks})")


def shrink(seed: int, spec: GenSpec,
           cloak_tweak: Optional[Callable[[Machine], None]] = None,
           max_checks: int = 160) -> ShrinkResult:
    """ddmin over the structural op indices of ``(seed, spec)``."""
    kind, detail = check_failure(seed, spec, cloak_tweak)
    if kind is None:
        raise ValueError(
            f"(seed={seed}, spec) does not fail; nothing to shrink")
    ops_before = len(generate(seed, spec).ops)

    alive: List[int] = sorted(
        set(range(generate(seed, spec).structural_count)) - set(spec.drop))
    checks = 1
    chunk = max(len(alive) // 2, 1)
    while True:
        index = 0
        while index < len(alive) and checks < max_checks:
            removed = alive[index:index + chunk]
            trial = spec.replace(
                drop=tuple(sorted(set(spec.drop) | set(removed))))
            trial_kind, trial_detail = check_failure(seed, trial, cloak_tweak)
            checks += 1
            if trial_kind == kind:
                spec, detail = trial, trial_detail
                del alive[index:index + chunk]
            else:
                index += chunk
        if chunk == 1 or checks >= max_checks:
            break
        chunk = max(chunk // 2, 1)

    ops_after = len(generate(seed, spec).ops)
    return ShrinkResult(seed, spec, kind, detail, ops_before, ops_after,
                        checks)
