"""Campaign driver: differential fuzzing at scale.

A campaign is a pure function of ``(campaign_seed, count, presets)``:
slot *i* derives its program seed with
:func:`repro.gen.spec.derive_seed`, generates a self-checking guest
program, and runs it through the oracle harness
(:mod:`repro.faults.oracle`):

* **native sanity** — the generated program must pass its own
  embedded checks natively (exit 0, ``GEN-OK``); anything else is a
  *generator* defect, reported as ``genfail`` rather than blamed on
  the cloaking engine;
* **transparency** — native and cloaked architectural state must
  agree byte-for-byte;
* **hygiene** — the cloaked run must finish with no violations and no
  kernel-visible secret marker;
* **determinism** (sampled every ``determinism_every`` slots) — a
  same-seed re-run of each configuration must be byte-identical down
  to the cycle counter;
* **fault containment** (opt-in) — a rotating injection site is armed
  for a third cloaked run, whose outcome must classify as
  ``RECOVERED`` or ``DETECTED``.

Every cloaked run carries an *audit* :class:`~repro.faults.plan.FaultPlan`
(all sites armed beyond reach) so the campaign can account which
fault sites each program walks past without perturbing a cycle, and a
probe-bus sink so observability coverage rides along for free.

Failures are shrunk (:mod:`repro.gen.shrink`) to a locally minimal
reproducer and reported with a paste-able
``python -m repro fuzz --replay`` token.
"""

import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.oracle import (AppSpec, CONTAINED_OUTCOMES, _diff_state,
                                 _pressure_params, classify, run_once)
from repro.faults.plan import INJECTION_POINTS, FaultArm, FaultPlan
from repro.gen.generator import build_program, generate
from repro.gen.shrink import FAILURE_KINDS, ShrinkResult, shrink
from repro.gen.spec import GenSpec, PRESETS, PRESET_ROTATION, derive_seed
from repro.guestos.uapi import Syscall
from repro.machine import Machine
from repro.obs import bus

#: Sites a short fault-rotation run is armed with: fire at every 3rd
#: opportunity so even site-sparse programs get a realistic burst.
FAULT_ROTATION = tuple(sorted(INJECTION_POINTS))


class _ProbeSink:
    """Minimal probe-bus sink: record which probe names ever fire."""

    __slots__ = ("names",)

    def __init__(self):
        self.names = set()

    def on_event(self, name, cycle, args) -> None:
        self.names.add(name)


def app_spec_for(seed: int, spec: GenSpec) -> Tuple[AppSpec, "OpPlan"]:
    """Materialize ``(seed, spec)`` into an oracle :class:`AppSpec`."""
    plan = generate(seed, spec)
    program = build_program(plan)
    app = AppSpec(
        name=plan.name, argv=(), files=plan.files, marker=plan.marker,
        params=_pressure_params if spec.pressure else None,
        program=program,
    )
    return app, plan


def _observed(app: AppSpec, cloaked: bool,
              plan: Optional[FaultPlan] = None,
              sink: Optional[_ProbeSink] = None,
              tweak: Optional[Callable[[Machine], None]] = None):
    """One oracle run with an optional probe sink attached for its
    duration (the bus requires one clock per attachment epoch)."""

    def hook(machine: Machine) -> None:
        if tweak is not None:
            tweak(machine)
        if sink is not None:
            bus.attach(sink, machine.cycles)

    try:
        return run_once(app, cloaked=cloaked, plan=plan, tweak=hook)
    finally:
        if sink is not None:
            bus.detach(sink)


class SlotResult:
    """What happened to one generated program in a campaign."""

    __slots__ = ("slot", "seed", "preset", "name", "ops", "status", "detail",
                 "determinism_checked", "fault_site", "fault_outcome",
                 "shrunk", "replay")

    def __init__(self, slot: int, seed: int, preset: str, name: str,
                 ops: int):
        self.slot = slot
        self.seed = seed
        self.preset = preset
        self.name = name
        self.ops = ops
        self.status = "ok"
        self.detail = ""
        self.determinism_checked = False
        self.fault_site: Optional[str] = None
        self.fault_outcome: Optional[str] = None
        self.shrunk: Optional[ShrinkResult] = None
        self.replay: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict:
        data = {
            "slot": self.slot, "seed": self.seed, "preset": self.preset,
            "name": self.name, "ops": self.ops, "status": self.status,
            "determinism_checked": self.determinism_checked,
        }
        if self.detail:
            data["detail"] = self.detail
        if self.fault_site is not None:
            data["fault_site"] = self.fault_site
            data["fault_outcome"] = self.fault_outcome
        if self.replay is not None:
            data["replay"] = self.replay
        if self.shrunk is not None:
            data["shrunk_ops"] = self.shrunk.ops_after
            data["shrink_checks"] = self.shrunk.checks
        return data


class CampaignReport:
    """Deterministic summary of one campaign (same seed ⇒ same JSON)."""

    __slots__ = ("campaign_seed", "count", "presets", "slots", "syscalls",
                 "fault_sites", "probes")

    def __init__(self, campaign_seed: int, count: int,
                 presets: Tuple[str, ...]):
        self.campaign_seed = campaign_seed
        self.count = count
        self.presets = presets
        self.slots: List[SlotResult] = []
        #: Union over the campaign: static syscall footprint of every
        #: generated program.
        self.syscalls = set()
        #: Fault sites with at least one opportunity in a cloaked run.
        self.fault_sites = set()
        #: Probe-bus event names observed.
        self.probes = set()

    def failures(self) -> List[SlotResult]:
        return [slot for slot in self.slots if not slot.ok]

    def syscalls_missing(self) -> List[str]:
        return sorted(sc.name for sc in Syscall
                      if sc.name not in self.syscalls)

    def fault_sites_missing(self) -> List[str]:
        return sorted(set(INJECTION_POINTS) - self.fault_sites)

    @property
    def ok(self) -> bool:
        return not self.failures()

    def to_dict(self) -> Dict:
        return {
            "campaign": {
                "seed": self.campaign_seed,
                "count": self.count,
                "presets": list(self.presets),
            },
            "coverage": {
                "syscalls": sorted(self.syscalls),
                "syscalls_missing": self.syscalls_missing(),
                "fault_sites": sorted(self.fault_sites),
                "fault_sites_missing": self.fault_sites_missing(),
                "probes": sorted(self.probes),
            },
            "programs": [slot.to_dict() for slot in self.slots],
            "failures": [slot.slot for slot in self.failures()],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def digest(self) -> str:
        """Content hash of the report — the determinism guard's anchor."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def replay_token(seed: int, spec: GenSpec) -> str:
    """The paste-able ``--replay`` argument: ``seed:spec-json``."""
    return f"{seed}:{spec.to_json()}"


def parse_replay_token(token: str) -> Tuple[int, GenSpec]:
    """Inverse of :func:`replay_token`."""
    seed_text, sep, spec_json = token.partition(":")
    if not sep:
        raise ValueError(f"bad replay token {token!r} (want seed:spec-json)")
    return int(seed_text), GenSpec.from_json(spec_json)


def run_slot(slot: int, seed: int, preset: str, spec: GenSpec,
             determinism: bool = False,
             fault_site: Optional[str] = None,
             shrink_failures: bool = True,
             cloak_tweak: Optional[Callable[[Machine], None]] = None,
             report: Optional[CampaignReport] = None) -> SlotResult:
    """Run one generated program through the full differential check."""
    app, plan = app_spec_for(seed, spec)
    result = SlotResult(slot, seed, preset, plan.name, len(plan.ops))
    sink = _ProbeSink()
    audit = FaultPlan.audit(seed)

    native = _observed(app, cloaked=False, sink=sink)
    cloaked = _observed(app, cloaked=True, plan=audit, sink=sink,
                        tweak=cloak_tweak)

    if report is not None:
        report.syscalls.update(plan.syscalls)
        report.fault_sites.update(
            site for site in INJECTION_POINTS
            if audit.opportunities(site) > 0)
        report.probes.update(sink.names)

    if native.exit_code != 0:
        result.status = "genfail"
        result.detail = (f"native exit {native.exit_code}: "
                         f"{native.console[-120:].decode(errors='replace')}")
    elif cloaked.exposed:
        result.status = "exposure"
        result.detail = "marker kernel-visible after cloaked run"
    elif cloaked.violations:
        result.status = "violation"
        result.detail = f"fault-free violations: {cloaked.violations}"
    elif native.state() != cloaked.state():
        result.status = "divergence"
        result.detail = _diff_state(native, cloaked)
    elif determinism:
        result.determinism_checked = True
        native2 = _observed(app, cloaked=False, sink=sink)
        cloaked2 = _observed(app, cloaked=True, plan=FaultPlan.audit(seed),
                             sink=sink, tweak=cloak_tweak)
        if not (native.identical(native2) and cloaked.identical(cloaked2)):
            result.status = "nondeterministic"
            result.detail = "same-seed re-run diverged"

    if result.ok and fault_site is not None:
        armed = FaultPlan(seed=seed,
                          arms=(FaultArm(fault_site, every=3),))
        faulty = _observed(app, cloaked=True, plan=armed)
        result.fault_site = fault_site
        result.fault_outcome = classify(cloaked, faulty)
        if result.fault_outcome not in CONTAINED_OUTCOMES:
            result.status = "fault-escape"
            result.detail = (f"{fault_site} -> {result.fault_outcome} "
                             f"(replay: {armed.replay_spec()})")

    if not result.ok:
        result.replay = replay_token(seed, spec)
        if shrink_failures and result.status in FAILURE_KINDS:
            result.shrunk = shrink(seed, spec, cloak_tweak=cloak_tweak)
            result.replay = result.shrunk.replay
    return result


def run_campaign(campaign_seed: int = 0, count: int = 64,
                 presets: Sequence[str] = PRESET_ROTATION,
                 determinism_every: int = 8,
                 fault_sites: bool = False,
                 shrink_failures: bool = True,
                 cloak_tweak: Optional[Callable[[Machine], None]] = None,
                 verbose: bool = False) -> CampaignReport:
    """Run a ``count``-program campaign; see the module docstring.

    ``cloak_tweak`` is forwarded to every cloaked run — the mutation
    tests use it to sabotage engine internals and assert the campaign
    catches the divergence.
    """
    report = CampaignReport(campaign_seed, count, tuple(presets))
    for slot in range(count):
        preset = presets[slot % len(presets)]
        spec = PRESETS[preset]
        seed = derive_seed(campaign_seed, slot)
        fault_site = (FAULT_ROTATION[slot % len(FAULT_ROTATION)]
                      if fault_sites else None)
        result = run_slot(
            slot, seed, preset, spec,
            determinism=determinism_every > 0
            and slot % determinism_every == 0,
            fault_site=fault_site, shrink_failures=shrink_failures,
            cloak_tweak=cloak_tweak, report=report,
        )
        report.slots.append(result)
        if verbose:
            status = result.status if result.ok else result.status.upper()
            extra = f"  {result.detail}" if result.detail else ""
            print(f"  fuzz[{slot:3d}] seed={seed:<20d} {preset:<9s} "
                  f"{result.name:<14s} ops={result.ops:<3d} {status}{extra}")
    return report
