"""repro.gen — seeded guest-program generation + differential fuzzing.

Scenario diversity used to be 41 hand-written programs; this package
turns the differential oracle (:mod:`repro.faults.oracle`) into a
fuzzer.  A :class:`~repro.gen.spec.GenSpec` plus an integer seed fully
determines a *self-checking* guest program — a weighted mix of file
I/O, mmap/brk, fork/exec trees, pipes, signal storms and secret-marker
placement over the whole :mod:`repro.apps.program` surface — and every
generated program runs native-vs-cloaked under the oracle's
transparency / determinism / hygiene checks.  Any failure is
replayable from ``(seed, spec)`` alone and shrinks to a locally
minimal reproducer (:mod:`repro.gen.shrink`).

Layers::

    spec.py       GenSpec: the (seed, spec) replay contract
    pool.py       resource pool: keeps generated fds/paths/maps well-formed
    generator.py  structural emit -> drop -> repair -> model -> OpPlan
    driver.py     fuzz campaigns over the differential oracle
    shrink.py     greedy delta-minimisation of failing (seed, spec) pairs

Entry point: ``python -m repro fuzz`` (see docs/FUZZING.md).
"""

from repro.gen.spec import GenSpec, PRESETS, PRESET_ROTATION, derive_seed
from repro.gen.generator import OpPlan, build_program, generate
from repro.gen.driver import (CampaignReport, SlotResult, parse_replay_token,
                              replay_token, run_campaign, run_slot)
from repro.gen.shrink import ShrinkResult, check_failure, shrink

__all__ = [
    "GenSpec",
    "PRESETS",
    "PRESET_ROTATION",
    "derive_seed",
    "OpPlan",
    "build_program",
    "generate",
    "CampaignReport",
    "SlotResult",
    "parse_replay_token",
    "replay_token",
    "run_campaign",
    "run_slot",
    "ShrinkResult",
    "check_failure",
    "shrink",
]
