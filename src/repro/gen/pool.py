"""Resource pool: what keeps generated programs well-formed.

Random op streams are useless if half the ops fault on a closed fd or
munmap an address that was never mapped — the run degenerates into
error-path noise and exercises nothing.  The pool gives the generator
riescue-style *constrained* randomness: every op draws its operands
(file handles, mapped regions, scratch buffers, child slots) from the
set of resources that are provably live at that point in the program,
so generated programs are self-checking rather than trivially
faulting.

Resources are *symbolic* at generation time — handle ``3`` is "the
fourth file the program opens", not a concrete fd number — and the
interpreter (:class:`repro.gen.generator.GeneratedProgram`) binds them
to concrete fds/vaddrs at runtime.  That indirection is what makes the
shrinker sound: :func:`sweep` replays the liveness rules over a
post-``drop`` op list and removes ops whose operands died with a
dropped producer, and :class:`FileModel` then recomputes every
expected byte, so *any* drop set yields a valid self-checking program.
"""

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Resource-token kinds (first element of a token tuple).
KIND_FD = "fd"          # an open content-file handle
KIND_MAP = "map"        # a live mmap region
KIND_BUF = "buf"        # an allocated scratch buffer

Token = Tuple[str, int]


class ResourcePool:
    """Symbolic live-resource state, advanced op by op.

    One instance serves the emitter (to draw valid operands) and a
    second, fresh instance serves :func:`sweep` (to re-derive liveness
    over the post-drop stream).  Both walk the same transition rules:
    an op's ``provides`` tokens become live after it, its ``revokes``
    tokens die with it, and an op is only admissible while every one of
    its ``needs`` tokens is live.
    """

    def __init__(self):
        self._live: Set[Token] = set()
        self._next_id: Dict[str, int] = {}
        #: kind -> ordered live ids (deterministic draws need order).
        self._order: Dict[str, List[int]] = {}

    # -- allocation -----------------------------------------------------

    def fresh(self, kind: str) -> int:
        """Allocate the next symbolic id of ``kind`` (not yet live)."""
        next_id = self._next_id.get(kind, 0)
        self._next_id[kind] = next_id + 1
        return next_id

    # -- liveness -------------------------------------------------------

    def live(self, kind: str) -> Tuple[int, ...]:
        """Live ids of ``kind``, in creation order."""
        return tuple(self._order.get(kind, ()))

    def is_live(self, token: Token) -> bool:
        return token in self._live

    def admissible(self, needs: Iterable[Token]) -> bool:
        return all(token in self._live for token in needs)

    def apply(self, provides: Iterable[Token],
              revokes: Iterable[Token]) -> None:
        """Advance past one op: grant its provides, kill its revokes."""
        for token in provides:
            if token not in self._live:
                self._live.add(token)
                self._order.setdefault(token[0], []).append(token[1])
        for token in revokes:
            if token in self._live:
                self._live.discard(token)
                self._order[token[0]].remove(token[1])


def sweep(ops: Sequence, drop: Iterable[int]) -> List:
    """Dependency-closing drop: remove ``drop`` indices *and* orphans.

    Walks ``ops`` in order with a fresh pool; an op survives iff its
    index is not dropped and every token it needs is still live (its
    producers survived).  Survivors' provides/revokes advance the pool,
    so a dropped ``open`` transitively removes the writes, seeks and
    close that used its handle — exactly the closure the shrinker needs
    to stay inside the space of valid programs.
    """
    dropped = set(drop)
    pool = ResourcePool()
    kept = []
    for index, op in enumerate(ops):
        if getattr(op, "kind", None) == "prologue":
            # The prologue captures run-wide state (the root pid) every
            # later op may rely on; it is never a shrink candidate.
            kept.append(op)
            continue
        if index in dropped or not pool.admissible(op.needs):
            continue
        pool.apply(op.provides, op.revokes)
        kept.append(op)
    return kept


class FileModel:
    """Byte-exact mirror of the guest kernel's regular-file semantics.

    The generator simulates every content-file op against this model
    (after the drop sweep) to bake concrete seek offsets, truncate
    sizes and expected read-back bytes into the finalized plan.  The
    model deliberately covers only the cases the generator emits —
    O_CREAT|O_RDWR (optionally O_APPEND) handles, in-bounds seeks,
    shrinking truncates — and refuses anything else, so model drift
    from :mod:`repro.guestos.sys_file` is an assertion, not a silent
    wrong expectation.
    """

    def __init__(self):
        #: path -> current logical content.
        self.files: Dict[str, bytearray] = {}
        #: symbolic handle id -> (path, offset, append).
        self.handles: Dict[int, Tuple[str, int, bool]] = {}

    # -- the op mirror --------------------------------------------------

    def open(self, handle: int, path: str, append: bool = False) -> None:
        if handle in self.handles:
            raise ValueError(f"handle {handle} opened twice")
        self.files.setdefault(path, bytearray())
        self.handles[handle] = (path, 0, append)

    def close(self, handle: int) -> None:
        del self.handles[handle]

    def write(self, handle: int, data: bytes) -> int:
        path, offset, append = self.handles[handle]
        content = self.files[path]
        if append:
            offset = len(content)
        end = offset + len(data)
        if end > len(content):
            content.extend(b"\x00" * (end - len(content)))
        content[offset:end] = data
        self.handles[handle] = (path, end, append)
        return len(data)

    def seek(self, handle: int, target: int) -> int:
        """SEEK_SET to ``target`` clamped into the current size."""
        path, __, append = self.handles[handle]
        clamped = max(0, min(target, len(self.files[path])))
        self.handles[handle] = (path, clamped, append)
        return clamped

    def truncate(self, handle: int, target: int) -> int:
        """Shrink-only truncate, clamped into the current size.

        Deliberately leaves the handle offset untouched — the kernel's
        truncate does not move file offsets.  The generator never
        *uses* an offset beyond EOF (every write re-seeks first), so
        no zero-fill-hole case can arise on either side.
        """
        path, __, __ = self.handles[handle]
        content = self.files[path]
        clamped = max(0, min(target, len(content)))
        del content[clamped:]
        return clamped

    def read_all(self, handle: int) -> bytes:
        """Expected bytes of a seek(0)+read(size) read-back."""
        path, __, append = self.handles[handle]
        data = bytes(self.files[path])
        self.handles[handle] = (path, len(data), append)
        return data

    def put(self, path: str, data: bytes) -> None:
        """Whole-file content written outside any handle (child
        protocols write their files in the child)."""
        self.files[path] = bytearray(data)

    # -- interrogation --------------------------------------------------

    def size(self, handle: int) -> int:
        return len(self.files[self.handles[handle][0]])

    def path_of(self, handle: int) -> str:
        return self.handles[handle][0]

    def surviving_paths(self) -> Tuple[str, ...]:
        """Paths that exist at end of program, in creation order."""
        return tuple(self.files)


def pick(rng, options: Sequence):
    """Deterministic choice that tolerates empty sequences."""
    if not options:
        return None
    return options[rng.randrange(len(options))]
