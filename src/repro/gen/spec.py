"""GenSpec: the declarative half of the ``(seed, spec)`` replay contract.

A spec names a *distribution* over guest programs; a seed picks one
program from it.  Together they are the complete reproducer for any
fuzzing result: the structural op stream is a pure function of
``(seed, spec-without-drop)``, and the ``drop`` index set (used by the
shrinker) removes ops *after* generation, so shrunk reproducers stay
expressible in the same vocabulary.

Serialisation is canonical JSON (sorted keys, no whitespace) so spec
strings can be pasted from failure messages into
``python -m repro fuzz --replay`` and so golden digests are stable.
"""

import hashlib
import json
from typing import Dict, Optional, Tuple

#: Op-mix categories a weight can be assigned to.  Each category names
#: a family of self-checking composites in :mod:`repro.gen.generator`.
CATEGORIES: Tuple[str, ...] = (
    "compute",   # ALU batches, register set/verify
    "mem",       # scratch store/load/copy round-trips
    "file",      # stateful open/write/seek/truncate/read-back/close
    "junk",      # model-free ABI sweep: mkdir/rename/unlink/readdir/dup2...
    "mmap",      # anonymous + file-backed map/touch/unmap
    "heap",      # brk grow/shrink with fresh-zero verification
    "proc",      # fork/exec/kill/wait protocols over pipes and files
    "thread",    # thread_create/join with private write buffers
    "ipc",       # self-pipe byte round-trips
    "signal",    # self-directed signal storms, masking, dispositions
    "secret",    # secret-marker placement in memory and /secure files
    "misc",      # getpid/getppid/gettime/nanosleep/yield/sync
)


class GenSpec:
    """Parameters of one generated-program distribution."""

    __slots__ = ("preset", "ops", "weights", "max_children", "max_threads",
                 "payload", "secret", "pressure", "sabotage", "drop")

    def __init__(self, preset: str = "default", ops: int = 28,
                 weights: Optional[Dict[str, int]] = None,
                 max_children: int = 3, max_threads: int = 2,
                 payload: int = 96, secret: bool = True,
                 pressure: bool = False, sabotage: str = "",
                 drop: Tuple[int, ...] = ()):
        self.preset = str(preset)
        self.ops = int(ops)
        self.weights = dict(weights) if weights is not None else {
            category: 1 for category in CATEGORIES
        }
        self.max_children = int(max_children)
        self.max_threads = int(max_threads)
        #: Upper bound on any single generated payload, bytes.
        self.payload = int(payload)
        self.secret = bool(secret)
        #: Run under reclaim-heavy MachineParams (swap traffic).
        self.pressure = bool(pressure)
        #: Deliberate divergence for shrinker/oracle self-tests:
        #: "" (none) or "time-print" (prints a virtual-cycle read, which
        #: legally differs native-vs-cloaked -> transparency failure).
        self.sabotage = str(sabotage)
        #: Structural op indices removed post-generation (shrinker).
        self.drop = tuple(sorted(set(int(i) for i in drop)))
        self.validate()

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        if self.ops < 1 or self.ops > 4096:
            raise ValueError(f"ops must be in [1, 4096], got {self.ops}")
        if not self.weights:
            raise ValueError("weights must not be empty")
        for category, weight in self.weights.items():
            if category not in CATEGORIES:
                raise ValueError(
                    f"unknown category {category!r} "
                    f"(known: {', '.join(CATEGORIES)})"
                )
            if not isinstance(weight, int) or weight < 0:
                raise ValueError(f"weight for {category!r} must be an int >= 0")
        if all(weight == 0 for weight in self.weights.values()):
            raise ValueError("at least one category weight must be positive")
        if self.max_children < 0 or self.max_children > 8:
            raise ValueError("max_children must be in [0, 8]")
        if self.max_threads < 0 or self.max_threads > 8:
            raise ValueError("max_threads must be in [0, 8]")
        if self.payload < 16 or self.payload > 8192:
            raise ValueError("payload must be in [16, 8192]")
        if self.sabotage not in ("", "time-print"):
            raise ValueError(f"unknown sabotage {self.sabotage!r}")
        if any(i < 0 for i in self.drop):
            raise ValueError("drop indices must be >= 0")

    # -- serialisation --------------------------------------------------

    def to_dict(self, with_drop: bool = True) -> Dict:
        data = {
            "preset": self.preset,
            "ops": self.ops,
            "weights": {k: v for k, v in sorted(self.weights.items())},
            "max_children": self.max_children,
            "max_threads": self.max_threads,
            "payload": self.payload,
            "secret": self.secret,
            "pressure": self.pressure,
            "sabotage": self.sabotage,
        }
        if with_drop:
            data["drop"] = list(self.drop)
        return data

    def to_json(self) -> str:
        """Canonical one-line spec string (paste into ``--replay``)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "GenSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad spec JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("spec JSON must be an object")
        known = {slot for slot in cls.__slots__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**{key: (tuple(value) if key == "drop" else value)
                      for key, value in data.items()})

    def replace(self, **overrides) -> "GenSpec":
        """A copy with the given fields replaced (drop lists included)."""
        data = self.to_dict()
        data.update(overrides)
        return GenSpec(**{key: (tuple(value) if key == "drop" else value)
                          for key, value in data.items()})

    # -- identity -------------------------------------------------------

    def structural_key(self) -> str:
        """Canonical JSON *without* ``drop``: the structural op stream
        is a pure function of (seed, structural_key)."""
        return json.dumps(self.to_dict(with_drop=False), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable identity of the full spec, drop set included."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def __eq__(self, other) -> bool:
        return isinstance(other, GenSpec) and self.to_json() == other.to_json()

    def __hash__(self) -> int:
        return hash(self.to_json())

    def __repr__(self) -> str:
        return f"GenSpec({self.to_json()})"


def derive_seed(campaign_seed: int, index: int) -> int:
    """Per-program seed: an independent substream per campaign slot.

    Pure function of (campaign seed, slot), so any program of a
    campaign is replayable without re-running its predecessors.
    """
    digest = hashlib.sha256(f"repro.gen:{campaign_seed}:{index}".encode())
    return int.from_bytes(digest.digest()[:8], "little")


def _weights(**overrides) -> Dict[str, int]:
    weights = {category: 1 for category in CATEGORIES}
    weights.update(overrides)
    return weights


#: Named spec presets.  The golden-listing test pins the first five;
#: campaigns rotate through all of them by default.
PRESETS: Dict[str, GenSpec] = {
    "default": GenSpec("default"),
    "fileio": GenSpec(
        "fileio", ops=32,
        weights=_weights(file=6, junk=3, mmap=2, proc=0, thread=0, signal=0),
    ),
    "forktree": GenSpec(
        "forktree", ops=20, max_children=4,
        weights=_weights(proc=6, ipc=2, file=2, mmap=0, heap=0, junk=0),
    ),
    "memstorm": GenSpec(
        "memstorm", ops=32, pressure=True,
        weights=_weights(mem=5, mmap=4, heap=4, proc=0, thread=0, junk=0),
    ),
    "sigstorm": GenSpec(
        "sigstorm", ops=28,
        weights=_weights(signal=6, misc=3, thread=2, proc=1, file=0, junk=0),
    ),
    "secrets": GenSpec(
        "secrets", ops=28, pressure=True,
        weights=_weights(secret=6, file=2, mem=2, proc=0, junk=0),
    ),
}

#: Campaign rotation order (deterministic; dict order is insertion
#: order but spelling it out keeps the contract explicit).
PRESET_ROTATION: Tuple[str, ...] = tuple(PRESETS)
