"""Seeded guest-program generation: emit -> drop -> sweep -> bake.

The pipeline behind :func:`generate`:

1. **Emit.**  A single ``random.Random(f"gen:{seed}:{structural_key}")``
   substream draws a stream of *structural ops* — self-checking
   composites (a file write, a fork/pipe protocol, a signal storm
   round...) — according to the spec's category weights.  Every random
   choice is drawn here and baked into the op's args, so the structural
   stream is a pure function of ``(seed, spec-without-drop)``.
2. **Drop + sweep.**  The spec's ``drop`` indices are removed, then
   :func:`repro.gen.pool.sweep` removes ops orphaned by the drops
   (a write whose open was dropped).  This is the shrinker's lever:
   any drop set yields a *valid* program.
3. **Bake.**  A :class:`~repro.gen.pool.FileModel` plus a signal-log
   model replay the surviving ops and bake every expectation — seek
   targets, read-back bytes, expected handler logs — into the ops.
   The generated program is thereby self-checking: it verifies its own
   architectural effects as it runs and fails loudly (exit 97,
   ``GENFAIL`` on the console) on any mismatch.

:func:`build_program` turns the finalized :class:`OpPlan` into a
:class:`repro.apps.program.Program` subclass that interprets the ops —
runnable native or cloaked, so the differential oracle can compare.
"""

import hashlib
import random
from typing import Dict, List, Optional, Tuple

from repro.apps.program import Program, UserContext
from repro.gen.pool import (KIND_FD, FileModel, ResourcePool, sweep)
from repro.gen.spec import GenSpec
from repro.guestos import uapi
from repro.guestos.uapi import Syscall
from repro.hw.params import PAGE_SIZE

#: Emission-time resource ceilings (see _Emitter): keep even a
#: 4096-op program inside the address-space layout's hard limits.
SCRATCH_BUDGET = 12 * 1024 * 1024      # DATA_MAX_PAGES is 16 MiB
MMAP_PAGE_BUDGET = 8192                # MMAP_MAX_PAGES is 16384
MAX_LIVE_FDS = 12

_SIGS = (uapi.SIGUSR1, uapi.SIGUSR2)


class GOp:
    """One structural op: a self-checking composite of user operations.

    ``args`` holds every emission-time random draw (concrete payloads
    included); ``expect`` holds model-derived expectations baked after
    the drop sweep.  ``needs``/``provides``/``revokes`` are the
    resource tokens the sweep uses to close dependencies.
    """

    __slots__ = ("kind", "args", "needs", "provides", "revokes", "expect")

    def __init__(self, kind: str, args: Optional[Dict] = None,
                 needs=(), provides=(), revokes=()):
        self.kind = kind
        self.args = dict(args or {})
        self.needs = tuple(needs)
        self.provides = tuple(provides)
        self.revokes = tuple(revokes)
        self.expect: Dict = {}

    def describe(self) -> str:
        """Canonical one-line rendering for listings and digests."""
        parts = [self.kind]
        for key in sorted(self.args):
            value = self.args[key]
            if isinstance(value, bytes):
                digest = hashlib.sha256(value).hexdigest()[:8]
                parts.append(f"{key}=bytes[{len(value)}]{digest}")
            else:
                parts.append(f"{key}={value}")
        for key in sorted(self.expect):
            value = self.expect[key]
            if isinstance(value, bytes):
                digest = hashlib.sha256(value).hexdigest()[:8]
                parts.append(f"!{key}=bytes[{len(value)}]{digest}")
            else:
                parts.append(f"!{key}={value}")
        return " ".join(parts)


class OpPlan:
    """A finalized generated program: ops plus derived facts."""

    __slots__ = ("seed", "spec", "ops", "structural_count", "marker",
                 "files", "syscalls", "digest")

    def __init__(self, seed: int, spec: GenSpec, ops: List[GOp],
                 structural_count: int, marker: Optional[bytes],
                 files: Tuple[str, ...], syscalls: Tuple[str, ...]):
        self.seed = seed
        self.spec = spec
        self.ops = ops
        #: Size of the structural index space (the shrinker's domain).
        self.structural_count = structural_count
        #: Secret marker placed by secret composites, or None.
        self.marker = marker
        #: Paths whose final contents are architectural state.
        self.files = files
        #: Names of every syscall the interpreter will issue.
        self.syscalls = syscalls
        self.digest = self._digest()

    @property
    def name(self) -> str:
        return f"gen-{self.digest[:10]}"

    def listing(self) -> List[str]:
        header = f"seed={self.seed} spec={self.spec.to_json()}"
        lines = [header]
        for index, op in enumerate(self.ops):
            lines.append(f"{index:4d} {op.describe()}")
        return lines

    def _digest(self) -> str:
        text = "\n".join(self.listing())
        return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# stage 1: emission
# ----------------------------------------------------------------------

class _Emitter:
    """Draws the structural op stream under resource budgets."""

    #: Categories that consume scratch; degraded to "compute" when the
    #: scratch budget runs dry.
    _SCRATCHY = frozenset((
        "mem", "file", "junk", "mmap", "heap", "proc", "thread", "ipc",
        "secret", "misc", "signal",
    ))

    def __init__(self, rng: random.Random, spec: GenSpec):
        self.rng = rng
        self.spec = spec
        self.pool = ResourcePool()
        self.scratch_left = SCRATCH_BUDGET
        self.mmap_pages_left = MMAP_PAGE_BUDGET
        #: Per-path upper bound on content size (scratch estimate for
        #: full-file read-backs).
        self.path_bound: Dict[str, int] = {}
        #: Symbolic fd -> path, for size-bound lookups.
        self.fd_path: Dict[int, str] = {}

    # -- randomness helpers ------------------------------------------------

    def _payload(self, cap: Optional[int] = None) -> bytes:
        limit = self.spec.payload if cap is None else min(self.spec.payload,
                                                          cap)
        return self.rng.randbytes(self.rng.randint(1, limit))

    def _charge_scratch(self, nbytes: int) -> None:
        self.scratch_left -= nbytes + 64

    # -- the stream ----------------------------------------------------------

    def emit(self) -> List[GOp]:
        ops = [GOp("prologue")]
        self._charge_scratch(256)
        categories = [c for c, w in sorted(self.spec.weights.items())
                      if w > 0]
        weights = [self.spec.weights[c] for c in categories]
        for __ in range(self.spec.ops):
            category = self.rng.choices(categories, weights)[0]
            op = self._emit_category(category)
            self.pool.apply(op.provides, op.revokes)
            ops.append(op)
        if self.spec.sabotage == "time-print":
            ops.append(GOp("sabotage_time"))
        return ops

    def _emit_category(self, category: str) -> GOp:
        if category == "secret" and not self.spec.secret:
            category = "mem"
        if category == "proc" and self.spec.max_children < 1:
            category = "mem"
        if category == "thread" and self.spec.max_threads < 1:
            category = "mem"
        if category in self._SCRATCHY and self.scratch_left < 128 * 1024:
            category = "compute"
        if category == "mmap" and self.mmap_pages_left < 8:
            category = "mem"
        return getattr(self, "_cat_" + category)()

    # -- category emitters --------------------------------------------------

    def _cat_compute(self) -> GOp:
        return GOp("compute", {
            "reg": self.rng.choice(("r6", "r7")),
            "value": self.rng.getrandbits(32),
            "units": self.rng.randint(1, 400),
        })

    def _cat_mem(self) -> GOp:
        data = self._payload()
        self._charge_scratch(3 * len(data))
        return GOp("mem", {
            "data": data,
            "mode": self.rng.choice(("roundtrip", "copy")),
        })

    def _cat_file(self) -> GOp:
        live = self.pool.live(KIND_FD)
        want_open = (not live
                     or (len(live) < MAX_LIVE_FDS
                         and self.rng.random() < 0.35))
        if want_open:
            fd = self.pool.fresh(KIND_FD)
            reuse = self.path_bound and self.rng.random() < 0.3
            if reuse:
                path = self.rng.choice(sorted(self.path_bound))
            else:
                path = f"/tmp/g{fd}.dat"
            self.path_bound.setdefault(path, 0)
            self.fd_path[fd] = path
            self._charge_scratch(len(path))
            return GOp("file_open", {
                "fd": fd, "path": path,
                "append": self.rng.random() < 0.25,
            }, provides=((KIND_FD, fd),))
        fd = self.rng.choice(live)
        action = self.rng.choices(
            ("write", "seek", "trunc", "read", "close"),
            (4, 2, 1, 2, 1))[0]
        token = ((KIND_FD, fd),)
        if action == "write":
            data = self._payload()
            self._charge_scratch(len(data))
            self.path_bound[self.fd_path[fd]] += len(data)
            return GOp("file_write", {
                "fd": fd, "data": data,
                "frac": self.rng.randint(0, 100),
            }, needs=token)
        if action == "seek":
            peek = self.rng.randint(1, 64)
            self._charge_scratch(peek)
            return GOp("file_seek", {
                "fd": fd, "frac": self.rng.randint(0, 100), "peek": peek,
            }, needs=token)
        if action == "trunc":
            return GOp("file_trunc", {
                "fd": fd, "frac": self.rng.randint(0, 100),
            }, needs=token)
        if action == "read":
            self._charge_scratch(self.path_bound[self.fd_path[fd]])
            return GOp("file_read", {"fd": fd}, needs=token)
        return GOp("file_close", {"fd": fd}, needs=token, revokes=token)

    def _cat_junk(self) -> GOp:
        data = self._payload(256)
        self._charge_scratch(3 * len(data) + 512)
        return GOp("junk", {"tag": self.pool.fresh("junk"), "data": data})

    def _cat_mmap(self) -> GOp:
        if self.rng.random() < 0.25:
            data = self._payload(PAGE_SIZE)
            self._charge_scratch(2 * len(data))
            self.mmap_pages_left -= 1
            return GOp("mmap_file", {
                "tag": self.pool.fresh("mmf"), "data": data,
            })
        npages = self.rng.randint(1, 4)
        self.mmap_pages_left -= npages
        data = self._payload(PAGE_SIZE)
        self._charge_scratch(2 * len(data))
        return GOp("mmap_anon", {"npages": npages, "data": data})

    def _cat_heap(self) -> GOp:
        data = self._payload(PAGE_SIZE)
        self._charge_scratch(2 * len(data))
        return GOp("heap", {
            "pages": self.rng.randint(2, 4), "data": data,
        })

    def _cat_proc(self) -> GOp:
        protocols = ["pipe", "kill", "exec", "file"]
        if self.spec.max_children >= 2:
            protocols.append("tree")
        protocol = self.rng.choice(protocols)
        if protocol == "exec":
            self._charge_scratch(64)
            return GOp("proc_exec")
        if protocol == "file":
            data = self._payload()
            path = f"/tmp/cf{self.pool.fresh('cf')}.bin"
            self._charge_scratch(3 * len(data) + len(path))
            return GOp("proc_file", {"path": path, "data": data})
        data = self._payload()
        if protocol == "pipe":
            self._charge_scratch(2 * len(data))
            return GOp("proc_pipe", {"data": data})
        if protocol == "kill":
            self._charge_scratch(2 * len(data))
            return GOp("proc_kill", {"data": data})
        data2 = self._payload()
        self._charge_scratch(3 * (len(data) + len(data2)))
        return GOp("proc_tree", {"data": data, "data2": data2})

    def _cat_thread(self) -> GOp:
        data = self._payload()
        self._charge_scratch(2 * len(data))
        return GOp("thread", {"data": data})

    def _cat_ipc(self) -> GOp:
        data = self._payload()
        self._charge_scratch(2 * len(data))
        return GOp("ipc", {"data": data})

    def _cat_signal(self) -> GOp:
        kind = self.rng.choices(("sig_self", "sig_masked", "sig_ignored"),
                                (3, 2, 1))[0]
        return GOp(kind, {"sig": self.rng.choice(_SIGS)})

    def _cat_secret(self) -> GOp:
        pad = self._payload()
        if self.rng.random() < 0.5:
            self._charge_scratch(2 * len(pad) + 64)
            return GOp("secret_mem", {"pad": pad})
        path = f"/secure/gsec{self.pool.fresh('sec')}.bin"
        self._charge_scratch(3 * len(pad) + len(path) + 64)
        return GOp("secret_file", {
            "fd": self.pool.fresh(KIND_FD), "path": path, "pad": pad,
        })

    def _cat_misc(self) -> GOp:
        self._charge_scratch(64)
        return GOp("misc", {"sleep": self.rng.randint(100, 2000)})


# ----------------------------------------------------------------------
# stage 3: the model pass (bake expectations)
# ----------------------------------------------------------------------

def _bake(ops: List[GOp], marker: Optional[bytes]) -> Tuple[str, ...]:
    """Replay the kept ops against the models; fill ``expect`` fields.

    Returns the ordered tuple of surviving file paths (architectural
    state for the oracle's file comparison).
    """
    fm = FileModel()
    sig_log: List[int] = []
    for op in ops:
        kind, args = op.kind, op.args
        if kind == "file_open":
            if args["fd"] not in fm.handles:
                fm.open(args["fd"], args["path"], args["append"])
        elif kind == "file_write":
            if not args["append_mode"]:
                size = fm.size(args["fd"])
                target = (size * args["frac"]) // 100
                op.expect["target"] = target
                fm.seek(args["fd"], target)
            fm.write(args["fd"], args["data"])
        elif kind == "file_seek":
            size = fm.size(args["fd"])
            target = (size * args["frac"]) // 100
            content = bytes(fm.files[fm.path_of(args["fd"])])
            got = content[target:target + args["peek"]]
            op.expect["target"] = target
            op.expect["bytes"] = got
            fm.seek(args["fd"], target + len(got))
        elif kind == "file_trunc":
            size = fm.size(args["fd"])
            target = (size * args["frac"]) // 100
            op.expect["target"] = fm.truncate(args["fd"], target)
        elif kind == "file_read":
            op.expect["bytes"] = fm.read_all(args["fd"])
        elif kind == "file_close":
            fm.close(args["fd"])
        elif kind == "secret_file":
            payload = marker + args["pad"]
            fm.open(args["fd"], args["path"])
            fm.write(args["fd"], payload)
            op.expect["bytes"] = payload
            fm.close(args["fd"])
        elif kind == "proc_file":
            fm.put(args["path"], args["data"])
        elif kind == "sig_self":
            op.expect["log_before"] = tuple(sig_log)
            sig_log.append(args["sig"])
            op.expect["log"] = tuple(sig_log)
        elif kind == "sig_masked":
            op.expect["log_before"] = tuple(sig_log)
            sig_log.append(args["sig"])
            op.expect["log"] = tuple(sig_log)
        elif kind == "sig_ignored":
            op.expect["log"] = tuple(sig_log)
    return fm.surviving_paths()


def _annotate_append_modes(ops: List[GOp]) -> None:
    """Propagate each handle's append flag to its writes (the
    interpreter and the model both need it before baking)."""
    append_of: Dict[int, bool] = {}
    for op in ops:
        if op.kind == "file_open":
            append_of.setdefault(op.args["fd"], op.args["append"])
        elif op.kind == "file_write":
            op.args["append_mode"] = append_of.get(op.args["fd"], False)


# ----------------------------------------------------------------------
# syscall accounting (static: the interpreter always issues these)
# ----------------------------------------------------------------------

_KIND_SYSCALLS: Dict[str, Tuple[Syscall, ...]] = {
    "prologue": (Syscall.GETPID, Syscall.GETPPID, Syscall.GETTIME,
                 Syscall.STAT, Syscall.SIGPROCMASK, Syscall.YIELD,
                 Syscall.NANOSLEEP, Syscall.SYNC),
    "compute": (),
    "mem": (),
    "file_open": (Syscall.OPEN,),
    "file_write": (Syscall.WRITE,),
    "file_seek": (Syscall.LSEEK, Syscall.READ),
    "file_trunc": (Syscall.TRUNCATE,),
    "file_read": (Syscall.LSEEK, Syscall.READ, Syscall.FSTAT),
    "file_close": (Syscall.CLOSE,),
    "junk": (Syscall.MKDIR, Syscall.OPEN, Syscall.WRITE, Syscall.FSTAT,
             Syscall.LSEEK, Syscall.READ, Syscall.TRUNCATE, Syscall.DUP2,
             Syscall.STAT, Syscall.RENAME, Syscall.MKFIFO, Syscall.READDIR,
             Syscall.CLOSE, Syscall.UNLINK),
    "mmap_anon": (Syscall.MMAP, Syscall.MUNMAP),
    "mmap_file": (Syscall.OPEN, Syscall.WRITE, Syscall.MMAP, Syscall.MUNMAP,
                  Syscall.CLOSE),
    "heap": (Syscall.BRK,),
    "proc_pipe": (Syscall.PIPE, Syscall.FORK, Syscall.CLOSE, Syscall.WRITE,
                  Syscall.READ, Syscall.WAITPID),
    "proc_kill": (Syscall.PIPE, Syscall.FORK, Syscall.CLOSE, Syscall.WRITE,
                  Syscall.READ, Syscall.WAITPID, Syscall.KILL),
    "proc_exec": (Syscall.FORK, Syscall.EXEC, Syscall.WAITPID),
    "proc_file": (Syscall.FORK, Syscall.WAITPID, Syscall.OPEN, Syscall.WRITE,
                  Syscall.CLOSE, Syscall.READ),
    "proc_tree": (Syscall.PIPE, Syscall.FORK, Syscall.CLOSE, Syscall.WRITE,
                  Syscall.READ, Syscall.WAITPID),
    "thread": (Syscall.THREAD_CREATE, Syscall.THREAD_JOIN),
    "ipc": (Syscall.PIPE, Syscall.WRITE, Syscall.READ, Syscall.CLOSE),
    "sig_self": (Syscall.SIGACTION, Syscall.KILL, Syscall.YIELD),
    "sig_masked": (Syscall.SIGACTION, Syscall.SIGPROCMASK, Syscall.KILL,
                   Syscall.YIELD),
    "sig_ignored": (Syscall.SIGACTION, Syscall.KILL, Syscall.YIELD),
    "secret_mem": (),
    "secret_file": (Syscall.OPEN, Syscall.WRITE, Syscall.LSEEK, Syscall.READ,
                    Syscall.CLOSE),
    "misc": (Syscall.GETPID, Syscall.GETPPID, Syscall.GETTIME,
             Syscall.NANOSLEEP, Syscall.YIELD, Syscall.SYNC),
    "sabotage_time": (Syscall.GETTIME,),
}


def _syscalls_of(ops: List[GOp]) -> Tuple[str, ...]:
    used = {Syscall.EXIT, Syscall.WRITE}   # runtime exit + console prints
    for op in ops:
        if op.kind == "file_write" and not op.args.get("append_mode"):
            used.add(Syscall.LSEEK)
        used.update(_KIND_SYSCALLS[op.kind])
    return tuple(sorted(s.name for s in used))


# ----------------------------------------------------------------------
# generate: the public pipeline
# ----------------------------------------------------------------------

def generate(seed: int, spec: GenSpec) -> OpPlan:
    """Produce the finalized plan for ``(seed, spec)``.

    Pure and deterministic: equal inputs give equal plans, including
    every baked payload byte.
    """
    spec.validate()
    rng = random.Random(f"gen:{seed}:{spec.structural_key()}")
    structural = _Emitter(rng, spec).emit()
    structural_count = len(structural)
    kept = sweep(structural, spec.drop)
    _annotate_append_modes(kept)
    marker_tag = hashlib.sha256(
        f"gensec:{seed}:{spec.structural_key()}".encode()).hexdigest()[:16]
    marker = f"GENSEC-{marker_tag}".encode()
    files = _bake(kept, marker)
    has_secret = any(op.kind in ("secret_mem", "secret_file") for op in kept)
    return OpPlan(
        seed=seed, spec=spec, ops=kept,
        structural_count=structural_count,
        marker=marker if has_secret else None,
        files=files, syscalls=_syscalls_of(kept),
    )


# ----------------------------------------------------------------------
# the interpreter: a Program over the finalized plan
# ----------------------------------------------------------------------

class GeneratedProgram(Program):
    """Interprets an :class:`OpPlan`; subclassed per plan by
    :func:`build_program`.

    Self-checking discipline: every composite verifies its own effects
    against the baked expectations and the whole run fails fast with
    exit code 97 and a ``GENFAIL`` console line naming the op.  The
    console additionally carries a ``c<i>.`` checkpoint per composite,
    so a native-vs-cloaked console diff pinpoints the divergence site.
    """

    plan: OpPlan = None

    def __init__(self):
        self._sig_log: List[int] = []
        self._fds: Dict[int, int] = {}
        #: Root pid captured at prologue.  ``ctx.pid`` is unreliable
        #: after thread_create: threads share the UserContext and
        #: their start overwrites its pid with the thread id.
        self._pid: Optional[int] = None

    def main(self, ctx: UserContext):
        for pos, op in enumerate(self.plan.ops):
            yield from ctx.print(f"c{pos}.")
            fail = yield from getattr(self, "_op_" + op.kind)(ctx, pos, op)
            if fail is not None:
                yield from ctx.print(f"\nGENFAIL op={pos} {op.kind} {fail}\n")
                return 97
        yield from ctx.print("\nGEN-OK\n")
        return 0

    def signal_handler(self, ctx: UserContext, sig: int):
        self._sig_log.append(sig)
        yield ctx.alu(5)

    # -- composites --------------------------------------------------------

    def _op_prologue(self, ctx, pos, op):
        pid = yield ctx.getpid()
        if pid != ctx.pid:
            return f"getpid {pid} != {ctx.pid}"
        self._pid = pid
        yield ctx.getppid()
        yield ctx.gettime()
        vaddr, length = yield from ctx.put_string("/tmp")
        st = yield ctx.stat(vaddr, length)
        if not isinstance(st, tuple) or st[0] != uapi.S_IFDIR:
            return f"stat /tmp -> {st!r}"
        yield ctx.sigprocmask(uapi.SIGUSR2, True)
        yield ctx.sigprocmask(uapi.SIGUSR2, False)
        yield ctx.sched_yield()
        yield ctx.nanosleep(120)
        yield ctx.sync()
        return None

    def _op_compute(self, ctx, pos, op):
        yield ctx.set_reg(op.args["reg"], op.args["value"])
        yield ctx.alu(op.args["units"])
        got = yield ctx.get_reg(op.args["reg"])
        if got != op.args["value"]:
            return f"reg {op.args['reg']} {got} != {op.args['value']}"
        return None

    def _op_mem(self, ctx, pos, op):
        data = op.args["data"]
        src = ctx.scratch(len(data))
        yield ctx.store(src, data)
        if op.args["mode"] == "copy":
            dst = ctx.scratch(len(data))
            yield ctx.copy(src, dst, len(data))
            got = yield ctx.load(dst, len(data))
        else:
            got = yield ctx.load(src, len(data))
        if got != data:
            return "memory round-trip mismatch"
        return None

    # -- files -------------------------------------------------------------

    def _op_file_open(self, ctx, pos, op):
        flags = uapi.O_CREAT | uapi.O_RDWR
        if op.args["append"]:
            flags |= uapi.O_APPEND
        fd = yield from ctx.open_path(op.args["path"], flags)
        if not isinstance(fd, int) or fd < 0:
            return f"open -> {fd!r}"
        self._fds[op.args["fd"]] = fd
        return None

    def _op_file_write(self, ctx, pos, op):
        fd = self._fds[op.args["fd"]]
        data = op.args["data"]
        if not op.args["append_mode"]:
            at = yield ctx.lseek(fd, op.expect["target"], uapi.SEEK_SET)
            if at != op.expect["target"]:
                return f"lseek -> {at!r}"
        written = yield from ctx.write_bytes(fd, data)
        if written != len(data):
            return f"write -> {written!r}"
        return None

    def _op_file_seek(self, ctx, pos, op):
        fd = self._fds[op.args["fd"]]
        at = yield ctx.lseek(fd, op.expect["target"], uapi.SEEK_SET)
        if at != op.expect["target"]:
            return f"lseek -> {at!r}"
        got = yield from ctx.read_exact(fd, len(op.expect["bytes"]))
        if got != op.expect["bytes"]:
            return "peek mismatch"
        return None

    def _op_file_trunc(self, ctx, pos, op):
        fd = self._fds[op.args["fd"]]
        result = yield ctx.truncate(fd, op.expect["target"])
        if result != 0:
            return f"truncate -> {result!r}"
        return None

    def _op_file_read(self, ctx, pos, op):
        fd = self._fds[op.args["fd"]]
        expected = op.expect["bytes"]
        yield ctx.lseek(fd, 0, uapi.SEEK_SET)
        got = yield from ctx.read_exact(fd, len(expected))
        if got != expected:
            return "content mismatch"
        st = yield ctx.fstat(fd)
        if not isinstance(st, tuple) or st[0] != uapi.S_IFREG:
            return f"fstat -> {st!r}"
        if st[1] != len(expected):
            return f"size {st[1]} != {len(expected)}"
        return None

    def _op_file_close(self, ctx, pos, op):
        fd = self._fds.pop(op.args["fd"])
        result = yield ctx.close(fd)
        if result != 0:
            return f"close -> {result!r}"
        return None

    def _op_junk(self, ctx, pos, op):
        tag, data = op.args["tag"], op.args["data"]
        base = f"/tmp/j{tag}"
        dvaddr, dlen = yield from ctx.put_string(base)
        yield ctx.mkdir(dvaddr, dlen)
        fd = yield from ctx.open_path(f"{base}/a", uapi.O_CREAT | uapi.O_RDWR)
        if not isinstance(fd, int) or fd < 0:
            return f"open -> {fd!r}"
        yield from ctx.write_bytes(fd, data)
        yield ctx.fstat(fd)
        yield ctx.lseek(fd, 0, uapi.SEEK_SET)
        yield from ctx.read_exact(fd, min(8, len(data)))
        yield ctx.truncate(fd, len(data) // 2)
        dup_target = fd + 64
        dup = yield ctx.dup2(fd, dup_target)
        if dup != dup_target:
            return f"dup2 -> {dup!r}"
        yield ctx.close(dup)
        avaddr, alen = yield from ctx.put_string(f"{base}/a")
        yield ctx.stat(avaddr, alen)
        bvaddr, blen = yield from ctx.put_string(f"{base}/b")
        yield ctx.rename(avaddr, alen, bvaddr, blen)
        fvaddr, flen = yield from ctx.put_string(f"{base}/f")
        yield ctx.mkfifo(fvaddr, flen)
        buf = ctx.scratch(256)
        yield ctx.readdir(dvaddr, dlen, buf, 256)
        yield ctx.close(fd)
        yield ctx.unlink(bvaddr, blen)
        return None

    # -- memory management --------------------------------------------------

    def _op_mmap_anon(self, ctx, pos, op):
        npages, data = op.args["npages"], op.args["data"]
        length = npages * PAGE_SIZE
        base = yield ctx.mmap(length, uapi.PROT_READ | uapi.PROT_WRITE,
                              uapi.MAP_ANON)
        if not isinstance(base, int) or base <= 0:
            return f"mmap -> {base!r}"
        yield ctx.store(base, data)
        got = yield ctx.load(base, len(data))
        if got != data:
            return "page 0 mismatch"
        if npages >= 2:
            tail = data[::-1]
            yield ctx.store(base + (npages - 1) * PAGE_SIZE, tail)
            got = yield ctx.load(base + (npages - 1) * PAGE_SIZE, len(tail))
            if got != tail:
                return "tail page mismatch"
        if npages >= 3:
            got = yield ctx.load(base + PAGE_SIZE, 16)
            if got != b"\x00" * 16:
                return "fresh page not zero-filled"
        result = yield ctx.munmap(base, length)
        if result != 0:
            return f"munmap -> {result!r}"
        return None

    def _op_mmap_file(self, ctx, pos, op):
        tag, data = op.args["tag"], op.args["data"]
        path = f"/tmp/mf{tag}.bin"
        fd = yield from ctx.open_path(path, uapi.O_CREAT | uapi.O_RDWR)
        if not isinstance(fd, int) or fd < 0:
            return f"open -> {fd!r}"
        yield from ctx.write_bytes(fd, data)
        base = yield ctx.mmap(PAGE_SIZE, uapi.PROT_READ, uapi.MAP_PRIVATE,
                              fd, 0)
        if not isinstance(base, int) or base <= 0:
            return f"mmap -> {base!r}"
        got = yield ctx.load(base, len(data))
        if got != data:
            return "mapped file content mismatch"
        result = yield ctx.munmap(base, PAGE_SIZE)
        if result != 0:
            return f"munmap -> {result!r}"
        yield ctx.close(fd)
        return None

    def _op_heap(self, ctx, pos, op):
        pages, data = op.args["pages"], op.args["data"]
        base = yield ctx.brk(0)
        grown = base + pages * PAGE_SIZE
        result = yield ctx.brk(grown)
        if result != grown:
            return f"brk grow -> {result!r}"
        yield ctx.store(base, data)
        tail = base + (pages - 1) * PAGE_SIZE
        yield ctx.store(tail, data[:16][::-1] or b"\x01")
        got = yield ctx.load(base, len(data))
        if got != data:
            return "heap page 0 mismatch"
        # Shrink to the old break, regrow: page 0 survives (the kernel
        # keeps one mapped heap page), the rest must come back zeroed.
        yield ctx.brk(base)
        result = yield ctx.brk(grown)
        if result != grown:
            return f"brk regrow -> {result!r}"
        got = yield ctx.load(base, len(data))
        if got != data:
            return "kept heap page lost its contents"
        got = yield ctx.load(tail, 16)
        if got != b"\x00" * 16:
            return "regrown heap page not zero-filled"
        yield ctx.brk(base)
        return None

    # -- processes and threads ---------------------------------------------

    def _child_pipe_writer(self, ctx, wfd, data):
        vaddr, __ = yield from ctx.put_bytes(data)
        sent = 0
        while sent < len(data):
            count = yield ctx.write(wfd, vaddr + sent, len(data) - sent)
            if not isinstance(count, int) or count <= 0:
                return 12
            sent += count
        return 0

    def _op_proc_pipe(self, ctx, pos, op):
        data = op.args["data"]
        rfd, wfd = yield ctx.pipe()
        pid = yield ctx.fork(self._child_pipe_writer, wfd, data)
        if not isinstance(pid, int) or pid <= 0:
            return f"fork -> {pid!r}"
        yield ctx.close(wfd)
        got = yield from ctx.read_exact(rfd, len(data))
        if got != data:
            return "pipe payload mismatch"
        yield ctx.close(rfd)
        reaped = yield ctx.waitpid(pid)
        if reaped != (pid, 0):
            return f"waitpid -> {reaped!r}"
        return None

    def _child_write_then_hang(self, ctx, wfd, hang_rfd, data):
        vaddr, __ = yield from ctx.put_bytes(data)
        sent = 0
        while sent < len(data):
            count = yield ctx.write(wfd, vaddr + sent, len(data) - sent)
            if not isinstance(count, int) or count <= 0:
                return 12
            sent += count
        buf = ctx.scratch(8)
        yield ctx.read(hang_rfd, buf, 1)   # blocks until SIGKILL
        return 13

    def _op_proc_kill(self, ctx, pos, op):
        data = op.args["data"]
        a_r, a_w = yield ctx.pipe()
        b_r, b_w = yield ctx.pipe()       # never written: the hang pipe
        pid = yield ctx.fork(self._child_write_then_hang, a_w, b_r, data)
        if not isinstance(pid, int) or pid <= 0:
            return f"fork -> {pid!r}"
        got = yield from ctx.read_exact(a_r, len(data))
        if got != data:
            return "pre-kill payload mismatch"
        yield ctx.kill(pid, uapi.SIGKILL)
        reaped = yield ctx.waitpid(pid)
        if reaped != (pid, 128 + uapi.SIGKILL):
            return f"waitpid -> {reaped!r}"
        for fd in (a_r, a_w, b_r, b_w):
            yield ctx.close(fd)
        return None

    def _child_exec(self, ctx, path_vaddr, path_len):
        yield ctx.exec(path_vaddr, path_len, argv=("1",))
        return 127   # unreachable unless exec failed

    def _op_proc_exec(self, ctx, pos, op):
        vaddr, length = yield from ctx.put_string("/bin/mb-empty")
        pid = yield ctx.fork(self._child_exec, vaddr, length)
        if not isinstance(pid, int) or pid <= 0:
            return f"fork -> {pid!r}"
        reaped = yield ctx.waitpid(pid)
        if reaped != (pid, 0):
            return f"waitpid -> {reaped!r}"
        return None

    def _child_file_writer(self, ctx, path, data):
        fd = yield from ctx.open_path(path, uapi.O_CREAT | uapi.O_RDWR)
        if not isinstance(fd, int) or fd < 0:
            return 14
        written = yield from ctx.write_bytes(fd, data)
        if written != len(data):
            return 15
        yield ctx.close(fd)
        return 0

    def _op_proc_file(self, ctx, pos, op):
        path, data = op.args["path"], op.args["data"]
        pid = yield ctx.fork(self._child_file_writer, path, data)
        if not isinstance(pid, int) or pid <= 0:
            return f"fork -> {pid!r}"
        reaped = yield ctx.waitpid(pid)
        if reaped != (pid, 0):
            return f"waitpid -> {reaped!r}"
        fd = yield from ctx.open_path(path, uapi.O_RDWR)
        got = yield from ctx.read_exact(fd, len(data))
        if got != data:
            return "child file content mismatch"
        yield ctx.close(fd)
        return None

    def _child_middle(self, ctx, wfd, data, data2):
        q_r, q_w = yield ctx.pipe()
        gpid = yield ctx.fork(self._child_pipe_writer, q_w, data2)
        if not isinstance(gpid, int) or gpid <= 0:
            return 16
        yield ctx.close(q_w)
        got = yield from ctx.read_exact(q_r, len(data2))
        if got != data2:
            return 17
        yield ctx.close(q_r)
        reaped = yield ctx.waitpid(gpid)
        if reaped != (gpid, 0):
            return 18
        merged = data + got
        vaddr, __ = yield from ctx.put_bytes(merged)
        sent = 0
        while sent < len(merged):
            count = yield ctx.write(wfd, vaddr + sent, len(merged) - sent)
            if not isinstance(count, int) or count <= 0:
                return 19
            sent += count
        return 0

    def _op_proc_tree(self, ctx, pos, op):
        data, data2 = op.args["data"], op.args["data2"]
        p_r, p_w = yield ctx.pipe()
        pid = yield ctx.fork(self._child_middle, p_w, data, data2)
        if not isinstance(pid, int) or pid <= 0:
            return f"fork -> {pid!r}"
        yield ctx.close(p_w)
        got = yield from ctx.read_exact(p_r, len(data) + len(data2))
        if got != data + data2:
            return "tree payload mismatch"
        yield ctx.close(p_r)
        reaped = yield ctx.waitpid(pid)
        if reaped != (pid, 0):
            return f"waitpid -> {reaped!r}"
        return None

    def _thread_worker(self, ctx, buf, data):
        yield ctx.store(buf, data)
        return 0

    def _op_thread(self, ctx, pos, op):
        data = op.args["data"]
        buf = ctx.scratch(len(data))
        tid = yield ctx.thread_create(self._thread_worker, buf, data)
        if not isinstance(tid, int) or tid <= 0:
            return f"thread_create -> {tid!r}"
        joined = yield ctx.thread_join(tid)
        if joined != (tid, 0):
            return f"thread_join -> {joined!r}"
        got = yield ctx.load(buf, len(data))
        if got != data:
            return "thread buffer mismatch"
        return None

    def _op_ipc(self, ctx, pos, op):
        data = op.args["data"]
        rfd, wfd = yield ctx.pipe()
        written = yield from ctx.write_bytes(wfd, data)
        if written != len(data):
            return f"pipe write -> {written!r}"
        got = yield from ctx.read_exact(rfd, len(data))
        if got != data:
            return "self-pipe payload mismatch"
        yield ctx.close(rfd)
        yield ctx.close(wfd)
        return None

    # -- signals -----------------------------------------------------------

    def _op_sig_self(self, ctx, pos, op):
        sig = op.args["sig"]
        yield ctx.sigaction(sig, 2)
        yield ctx.kill(self._pid, sig)
        yield ctx.sched_yield()
        if tuple(self._sig_log) != op.expect["log"]:
            return f"handler log {self._sig_log} != {list(op.expect['log'])}"
        return None

    def _op_sig_masked(self, ctx, pos, op):
        sig = op.args["sig"]
        yield ctx.sigaction(sig, 2)
        yield ctx.sigprocmask(sig, True)
        yield ctx.kill(self._pid, sig)
        yield ctx.sched_yield()
        if tuple(self._sig_log) != op.expect["log_before"]:
            return "masked signal delivered early"
        yield ctx.sigprocmask(sig, False)
        yield ctx.sched_yield()
        if tuple(self._sig_log) != op.expect["log"]:
            return "unmasked signal not delivered"
        return None

    def _op_sig_ignored(self, ctx, pos, op):
        sig = op.args["sig"]
        yield ctx.sigaction(sig, uapi.SIG_IGN)
        yield ctx.kill(self._pid, sig)
        yield ctx.sched_yield()
        if tuple(self._sig_log) != op.expect["log"]:
            return "ignored signal delivered"
        return None

    # -- secrets -----------------------------------------------------------

    def _op_secret_mem(self, ctx, pos, op):
        payload = self.plan.marker + op.args["pad"]
        buf = ctx.scratch(len(payload))
        yield ctx.store(buf, payload)
        got = yield ctx.load(buf, len(payload))
        if got != payload:
            return "secret buffer mismatch"
        # Deliberately left resident: the oracle's hygiene scan must
        # not find the marker kernel-visible after a cloaked exit.
        return None

    def _op_secret_file(self, ctx, pos, op):
        payload = op.expect["bytes"]
        fd = yield from ctx.open_path(op.args["path"],
                                      uapi.O_CREAT | uapi.O_RDWR)
        if not isinstance(fd, int) or fd < 0:
            return f"open -> {fd!r}"
        written = yield from ctx.write_bytes(fd, payload)
        if written != len(payload):
            return f"write -> {written!r}"
        yield ctx.lseek(fd, 0, uapi.SEEK_SET)
        got = yield from ctx.read_exact(fd, len(payload))
        if got != payload:
            return "secret file read-back mismatch"
        yield ctx.close(fd)
        return None

    # -- misc ---------------------------------------------------------------

    def _op_misc(self, ctx, pos, op):
        pid = yield ctx.getpid()
        if pid != self._pid:
            return f"getpid {pid} != {self._pid}"
        yield ctx.getppid()
        yield ctx.gettime()
        yield ctx.nanosleep(op.args["sleep"])
        yield ctx.sched_yield()
        yield ctx.sync()
        return None

    def _op_sabotage_time(self, ctx, pos, op):
        # Deliberate transparency violation for shrinker/driver
        # self-tests: virtual time legally differs native-vs-cloaked,
        # so printing it must be caught by the oracle.
        now = yield ctx.gettime()
        yield from ctx.print(f"T={now}\n")
        return None


def build_program(plan: OpPlan):
    """A concrete :class:`Program` subclass interpreting ``plan``.

    The class name embeds the plan digest, so the image-identity cache
    in :mod:`repro.apps.program` keys distinct plans separately.
    """
    class_name = f"Gen_{plan.digest[:10]}"
    return type(class_name, (GeneratedProgram,), {
        "name": plan.name,
        "plan": plan,
    })
