"""Pinned golden listings: seed-stability of the generator.

The replay contract — any failure reproduces from ``(seed, spec)``
alone — only holds while generation stays a pure function of that
pair.  This module pins one canonical ``(seed, preset)`` per preset to
its listing digest; tests/gen/test_golden.py compares a fresh
generation against the committed snapshot, so any change to emission
order, baking, or op rendering shows up as an explicit diff instead of
silently orphaning every replay token in old failure reports.

Intentional generator changes regenerate the snapshot with::

    python -m repro fuzz --write-golden
"""

import json
import os
from typing import Dict, Optional

from repro.gen.generator import generate
from repro.gen.spec import PRESETS, PRESET_ROTATION, derive_seed

#: Campaign seed the golden programs derive from.
GOLDEN_SEED = 2026

#: Repo-relative default target (the CLI runs from the repo root).
DEFAULT_PATH = os.path.join("tests", "gen", "golden_listings.json")


def snapshot() -> Dict[str, Dict]:
    """Freshly generate every golden program's identity."""
    out: Dict[str, Dict] = {}
    for index, preset in enumerate(PRESET_ROTATION):
        seed = derive_seed(GOLDEN_SEED, index)
        plan = generate(seed, PRESETS[preset])
        out[preset] = {
            "seed": seed,
            "digest": plan.digest,
            "ops": len(plan.ops),
            "structural": plan.structural_count,
            "syscalls": sorted(plan.syscalls),
        }
    return out


def write_golden(path: Optional[str] = None) -> str:
    path = path or DEFAULT_PATH
    with open(path, "w") as sink:
        json.dump(snapshot(), sink, indent=2, sort_keys=True)
        sink.write("\n")
    return path


def load_golden(path: Optional[str] = None) -> Dict[str, Dict]:
    with open(path or DEFAULT_PATH) as source:
        return json.load(source)
