"""IPC syscalls: anonymous pipes."""

from typing import Dict

from repro.guestos.pipes import Pipe
from repro.guestos.process import OpenFile, Process
from repro.guestos.uapi import Syscall


def sys_pipe(kernel, proc: Process, args, extra):
    """Create a pipe; returns (read_fd, write_fd)."""
    pipe = Pipe()
    pipe.add_reader()
    pipe.add_writer()
    read_fd = proc.alloc_fd(OpenFile(OpenFile.PIPE_R, pipe=pipe))
    write_fd = proc.alloc_fd(OpenFile(OpenFile.PIPE_W, pipe=pipe))
    return (read_fd, write_fd)


def handlers() -> Dict[Syscall, callable]:
    return {
        Syscall.PIPE: sys_pipe,
    }
