"""Memory-management syscalls: mmap/munmap/brk."""

from typing import Dict

from repro.guestos import layout, uapi
from repro.guestos.process import OpenFile, Process, VMA
from repro.guestos.ramfs import InodeType
from repro.guestos.uapi import Syscall
from repro.hw.params import PAGE_SIZE


def sys_mmap(kernel, proc: Process, args, extra):
    length, prot, flags, fd, offset = args
    if length <= 0 or offset % PAGE_SIZE:
        return -uapi.EINVAL
    npages = layout.page_count(length)
    writable = bool(prot & uapi.PROT_WRITE)

    if flags & uapi.MAP_ANON:
        vaddr = proc.aspace.alloc_mmap_region(npages)
        proc.aspace.add_vma(VMA(layout.vpn_of(vaddr), npages,
                                writable=writable, label="mmap-anon"))
        return vaddr

    open_file = proc.fd(fd)
    if open_file is None or open_file.kind != OpenFile.REGULAR:
        return -uapi.EBADF
    inode = kernel.fs.get(open_file.inode_id)
    if inode.itype is not InodeType.REGULAR:
        return -uapi.EACCES
    vaddr = proc.aspace.alloc_mmap_region(npages)
    proc.aspace.add_vma(VMA(
        layout.vpn_of(vaddr), npages,
        writable=writable,
        kind=VMA.FILE,
        inode_id=inode.inode_id,
        file_page=offset // PAGE_SIZE,
        shared=bool(flags & uapi.MAP_SHARED),
        label="mmap-file",
    ))
    return vaddr


def sys_munmap(kernel, proc: Process, args, extra):
    vaddr, length = args
    if vaddr % PAGE_SIZE or length <= 0:
        return -uapi.EINVAL
    start_vpn = layout.vpn_of(vaddr)
    vma = proc.aspace.remove_vma(start_vpn)
    if vma is None:
        return -uapi.EINVAL
    for vpn in range(vma.start_vpn, vma.end_vpn):
        pfn = proc.aspace.unmap_page(vpn)
        if pfn is not None and vma.kind == VMA.ANON:
            kernel.alloc.free(pfn)
        # FILE pages belong to the page cache; the frame stays.
    return 0


def sys_brk(kernel, proc: Process, args, extra):
    (new_brk,) = args
    aspace = proc.aspace
    if new_brk == 0:
        return aspace.brk_vaddr
    if new_brk < layout.HEAP_BASE:
        return -uapi.EINVAL
    limit = layout.HEAP_BASE + layout.HEAP_MAX_PAGES * PAGE_SIZE
    if new_brk > limit:
        return -uapi.ENOMEM

    old_end_vpn = layout.vpn_of(layout.vaddr_of(
        layout.page_count(aspace.brk_vaddr - layout.HEAP_BASE))
        + layout.HEAP_BASE) if aspace.brk_vaddr > layout.HEAP_BASE else layout.vpn_of(layout.HEAP_BASE)
    new_pages = layout.page_count(new_brk - layout.HEAP_BASE)
    heap_vma = aspace.find_vma(layout.vpn_of(layout.HEAP_BASE))

    if new_brk > aspace.brk_vaddr:
        if heap_vma is None:
            aspace.add_vma(VMA(layout.vpn_of(layout.HEAP_BASE),
                               max(new_pages, 1), label="heap"))
        elif new_pages > heap_vma.npages:
            heap_vma.npages = new_pages
    elif new_brk < aspace.brk_vaddr and heap_vma is not None:
        # Shrink: release pages beyond the new break.
        keep = max(new_pages, 1)
        for vpn in range(heap_vma.start_vpn + keep, heap_vma.end_vpn):
            pfn = aspace.unmap_page(vpn)
            if pfn is not None:
                kernel.alloc.free(pfn)
            # A released page may be in swap rather than resident; a
            # stale slot would resurrect its old contents on regrow.
            kernel.reclaimer.swap.drop_slot(proc.asid, vpn)
        heap_vma.npages = keep
    aspace.brk_vaddr = new_brk
    return new_brk


def handlers() -> Dict[Syscall, callable]:
    return {
        Syscall.MMAP: sys_mmap,
        Syscall.MUNMAP: sys_munmap,
        Syscall.BRK: sys_brk,
    }
