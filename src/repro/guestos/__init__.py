"""The untrusted commodity guest operating system.

A deliberately conventional kernel: processes with demand-paged
address spaces, a preemptive round-robin scheduler, a POSIX-flavoured
syscall layer, a VFS with an in-memory filesystem and block cache,
pipes, and signals.  It knows nothing about cloaking: it manages
every page — cloaked or not — through ordinary page tables, which is
precisely the property Overshadow depends on ("the OS manages
resources without seeing their contents").

Interaction with the VMM is limited to architectural interfaces a
real OS has anyway: loading page-table roots, ``invlpg`` after PTE
edits, and address-space lifecycle events the VMM observes.
"""

from repro.guestos.kernel import Kernel
from repro.guestos.process import AddressSpace, Process, ProcessState
from repro.guestos.scheduler import Scheduler
from repro.guestos import uapi

__all__ = [
    "AddressSpace",
    "Kernel",
    "Process",
    "ProcessState",
    "Scheduler",
    "uapi",
]
