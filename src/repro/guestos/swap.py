"""Anonymous-page swapping: the kernel's reclaim path.

Under memory pressure a kernel steals resident pages, writes them to
swap, and faults them back on demand.  For Overshadow this is a
*hostile-looking but legitimate* workload: every swap-out of a cloaked
plaintext page forces an encrypt transition (the DMA gateway
guarantees the device never sees plaintext), and every swap-in is
verified against the page's (version, IV, MAC) on the next
application touch.  The cloaking protocol was designed so that exactly
this sequence works without OS cooperation.

Reclaim runs from the machine loop on a configurable cadence (see
``MachineParams.reclaim_interval_cycles``), scanning processes
round-robin and evicting anonymous pages FIFO — deliberately dumb, as
a pressure generator should be.
"""

from typing import Dict, List, Optional, Tuple

from repro.guestos.blockcache import BlockCache
from repro.guestos.process import Process, ProcessState, VMA
from repro.obs import bus


class SwapSpace:
    """Slot allocation over the disk, namespaced away from file data.

    Reuses the block cache's allocator with negative pseudo-inode ids
    (one per address space), so swap and file blocks never collide.
    """

    def __init__(self, cache: BlockCache):
        self._cache = cache

    @staticmethod
    def _pseudo_inode(asid: int) -> int:
        return -(asid + 1)

    def write_out(self, asid: int, vpn: int, gpfn: int) -> None:
        self._cache.writeback_page(self._pseudo_inode(asid), vpn, gpfn)

    def read_in(self, asid: int, vpn: int, gpfn: int) -> bool:
        return self._cache.readin_page(self._pseudo_inode(asid), vpn, gpfn)

    def has_slot(self, asid: int, vpn: int) -> bool:
        return self._cache.block_of(self._pseudo_inode(asid), vpn) is not None

    def drop_slot(self, asid: int, vpn: int) -> bool:
        """Invalidate one slot (the page was unmapped, not faulted in)."""
        return self._cache.drop_page(self._pseudo_inode(asid), vpn)

    def drop_address_space(self, asid: int) -> int:
        return self._cache.drop_file(self._pseudo_inode(asid))


class PageReclaimer:
    """Picks and evicts resident anonymous pages."""

    def __init__(self, kernel):
        self._kernel = kernel
        self.swap = SwapSpace(kernel.cache)
        #: Rotates across processes so no single victim starves.
        self._next_pid_index = 0
        self.pages_evicted = 0
        self.pages_swapped_in = 0

    # -- eviction ------------------------------------------------------------

    def _eviction_candidates(self, proc: Process) -> List[Tuple[int, int]]:
        """(vpn, pfn) pairs of resident anonymous pages of ``proc``."""
        candidates = []
        for vpn, pfn in proc.aspace.mapped_pages():
            vma = proc.aspace.find_vma(vpn)
            if vma is None or vma.kind != VMA.ANON:
                continue
            candidates.append((vpn, pfn))
        return candidates

    def reclaim(self, target_pages: int) -> int:
        """Evict up to ``target_pages`` anonymous pages; returns count."""
        kernel = self._kernel
        procs = [p for p in kernel.processes.values()
                 if p.state in (ProcessState.READY, ProcessState.BLOCKED,
                                ProcessState.RUNNING)]
        if not procs:
            return 0
        evicted = 0
        # Round-robin over processes, FIFO within each.
        for offset in range(len(procs)):
            if evicted >= target_pages:
                break
            proc = procs[(self._next_pid_index + offset) % len(procs)]
            for vpn, pfn in self._eviction_candidates(proc):
                if evicted >= target_pages:
                    break
                self._evict_one(proc, vpn, pfn)
                evicted += 1
        self._next_pid_index += 1
        self.pages_evicted += evicted
        kernel.stats.bump("kernel.pages_evicted", evicted)
        return evicted

    def _evict_one(self, proc: Process, vpn: int, pfn: int) -> None:
        kernel = self._kernel
        # The write-out DMAs through the IOMMU interposition, which
        # encrypts cloaked plaintext in place before the device (and
        # this kernel) ever sees the bytes.
        self.swap.write_out(proc.asid, vpn, pfn)
        bus.swap_out(proc.asid, vpn, pfn)
        proc.aspace.unmap_page(vpn)
        kernel.alloc.free(pfn)

    # -- swap-in (called from the page-fault handler) ----------------------------

    def swap_in(self, proc: Process, vpn: int) -> Optional[int]:
        """Fault-in a previously evicted page; returns the new pfn, or
        None when the page was never swapped."""
        if not self.swap.has_slot(proc.asid, vpn):
            return None
        kernel = self._kernel
        pfn = kernel.alloc.alloc()
        self.swap.read_in(proc.asid, vpn, pfn)
        bus.swap_in(proc.asid, vpn, pfn)
        vma = proc.aspace.find_vma(vpn)
        writable = vma.writable if vma is not None else True
        proc.aspace.map_page(vpn, pfn, writable=writable)
        self.pages_swapped_in += 1
        kernel.stats.bump("kernel.pages_swapped_in")
        return pfn
