"""The guest kernel: process lifecycle, trap handling, syscall dispatch.

The kernel is *untrusted* in Overshadow's threat model.  Nothing here
may (or can) consult cloaking state: user memory is reached only
through the MMU in system view, so cloaked buffers simply read as
ciphertext.  The only VMM contact is the architectural interface
(``arch``): address-space registration, ``invlpg``, and lifecycle
notifications — the same events a real OS generates on real hardware.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.guestos import layout, uapi
from repro.guestos.blockcache import BlockCache, DMAGateway
from repro.guestos.process import AddressSpace, OpenFile, Process, ProcessState, VMA
from repro.guestos.ramfs import InodeType, RamFS
from repro.guestos.scheduler import Scheduler
from repro.guestos.uapi import Blocked, Syscall, WaitChannel
from repro.guestos.vfs import VFS, VFSError
from repro.hw.cpu import CPUMode, VirtualCPU
from repro.hw.cycles import CycleAccount, StatCounters
from repro.hw.disk import Disk
from repro.hw.faults import PageFault, PageFaultReason
from repro.hw.mmu import MMU, MODE_KERNEL, SYSTEM_VIEW
from repro.hw.params import CostTable, PAGE_SIZE
from repro.hw.phys import FrameAllocator, OutOfMemoryError, PhysicalMemory

#: Merged syscall-number -> module-function map.  Static for the
#: process lifetime, so built once and shared by every kernel —
#: dispatch passes the kernel explicitly, which keeps snapshot restore
#: free of any per-machine table rebuild.
_HANDLER_FNS: Optional[Dict[Syscall, Callable]] = None


def _handler_functions() -> Dict[Syscall, Callable]:
    global _HANDLER_FNS
    if _HANDLER_FNS is None:
        from repro.guestos import (sys_file, sys_ipc, sys_mem, sys_proc,
                                   sys_thread)
        table: Dict[Syscall, Callable] = {}
        for module in (sys_file, sys_ipc, sys_mem, sys_proc, sys_thread):
            for number, fn in module.handlers().items():
                if number in table:
                    raise RuntimeError(f"duplicate syscall handler {number}")
                table[number] = fn
        _HANDLER_FNS = table
    return _HANDLER_FNS


class Console:
    """Per-process output sink (the write(1/2) destination)."""

    def __init__(self) -> None:
        self._streams: Dict[int, bytearray] = {}

    def write(self, pid: int, data: bytes) -> None:
        self._streams.setdefault(pid, bytearray()).extend(data)

    def output_of(self, pid: int) -> bytes:
        return bytes(self._streams.get(pid, b""))

    def text_of(self, pid: int) -> str:
        return self.output_of(pid).decode(errors="replace")


class RegistryEntry:
    """One installable program: how to build its code and runtime."""

    __slots__ = ("name", "program_factory", "runtime_factory", "image")

    def __init__(self, name: str, program_factory: Callable,
                 runtime_factory: Callable, image: bytes):
        self.name = name
        self.program_factory = program_factory
        self.runtime_factory = runtime_factory
        self.image = image

    def __deepcopy__(self, memo):
        # Immutable after construction (a name, a program class, a
        # stateless factory over immutables, frozen image bytes):
        # machine clones share the entry instead of reconstructing
        # the whole registry per snapshot restore.
        return self


class Kernel:
    """One guest kernel instance."""

    def __init__(
        self,
        phys: PhysicalMemory,
        alloc: FrameAllocator,
        mmu: MMU,
        cpu: VirtualCPU,
        cycles: CycleAccount,
        stats: StatCounters,
        costs: CostTable,
        disk: Disk,
        dma: DMAGateway,
        arch,
        cache: Optional[BlockCache] = None,
    ):
        self.phys = phys
        self.alloc = alloc
        self.mmu = mmu
        self.cpu = cpu
        self.cycles = cycles
        self.stats = stats
        self.costs = costs
        self.arch = arch

        # An injected cache (the fault harness passes one) must be
        # wired in at construction so fs and swap share the instance.
        self.cache = cache if cache is not None else BlockCache(disk, dma)
        self.fs = RamFS(phys, alloc, self.cache, cycles, costs)
        self.vfs = VFS(self.fs)
        self.scheduler = Scheduler()
        self.console = Console()
        from repro.guestos.swap import PageReclaimer

        self.reclaimer = PageReclaimer(self)

        self.processes: Dict[int, Process] = {}
        self._registry: Dict[str, RegistryEntry] = {}
        self._next_pid = 1
        self._next_asid = 1
        #: Channels parents sleep on in waitpid.
        self._child_channels: Dict[int, WaitChannel] = {}
        #: nanosleep support: channel + (wake_at, proc) entries.
        self.sleep_channel = WaitChannel("sleepers")
        self._sleepers: List[Process] = []
        #: Address spaces already torn down (shared by thread groups).
        self._released_asids: set = set()

        # Per-kernel copy of the static table: one flat dict copy, and
        # a test/attack that swaps a handler poisons only this kernel.
        self._handlers = dict(_handler_functions())

    def __getstate__(self):
        # The handler table is rebuilt from the module constant;
        # dropping it keeps snapshot blobs free of ~90 global refs.
        state = self.__dict__.copy()
        del state["_handlers"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._handlers = dict(_handler_functions())

    # ------------------------------------------------------------------
    # program registry / spawn
    # ------------------------------------------------------------------

    def register_program(self, name: str, program_factory: Callable,
                         runtime_factory: Callable, image: bytes) -> None:
        """Install a runnable program under ``name``.

        ``runtime_factory(program, argv)`` builds the user runtime —
        the machine layer passes a shim-wrapping factory for programs
        meant to run cloaked.
        """
        self._registry[name] = RegistryEntry(name, program_factory,
                                             runtime_factory, image)

    def registered(self, name: str) -> bool:
        return name in self._registry

    def image_of(self, name: str) -> bytes:
        return self._registry[name].image

    def spawn(self, name: str, argv: Tuple[str, ...] = (),
              ppid: int = 0) -> Process:
        """Create and enqueue a process running program ``name``."""
        entry = self._registry.get(name)
        if entry is None:
            raise KeyError(f"no program registered as {name!r}")
        pid = self._next_pid
        self._next_pid += 1
        aspace = self._build_address_space(entry.image)
        program = entry.program_factory()
        runtime = entry.runtime_factory(program, argv)
        proc = Process(pid, ppid, name, aspace, runtime,
                       cloaked=getattr(runtime, "provides_cloaking", False))
        proc.spawned_at = self.cycles.total
        self._install_std_fds(proc)
        runtime.start(pid)
        self.processes[pid] = proc
        if ppid in self.processes:
            self.processes[ppid].children.append(pid)
        self.scheduler.enqueue(proc)
        self.stats.bump("kernel.spawns")
        return proc

    def _build_empty_address_space(self) -> AddressSpace:
        asid = self._next_asid
        self._next_asid += 1
        aspace = AddressSpace(asid, self.phys, self.alloc, self.arch.invlpg)
        self.arch.register_address_space(asid, aspace.root_pfn)
        return aspace

    def _fork_address_space(self, parent: Process) -> AddressSpace:
        from repro.guestos.sys_proc import _fork_address_space

        return _fork_address_space(self, parent)

    def _build_address_space(self, image: bytes) -> AddressSpace:
        aspace = self._build_empty_address_space()

        code_pages = max(layout.CODE_PAGES, layout.page_count(len(image)))
        aspace.add_vma(VMA(layout.vpn_of(layout.CODE_BASE), code_pages,
                           writable=False, label="code"))
        aspace.add_vma(VMA(layout.vpn_of(layout.DATA_BASE),
                           layout.DATA_MAX_PAGES, label="data"))
        aspace.add_vma(VMA(layout.vpn_of(layout.STACK_TOP) - layout.STACK_PAGES,
                           layout.STACK_PAGES, label="stack"))
        aspace.add_vma(VMA(layout.vpn_of(layout.MARSHAL_BASE),
                           layout.MARSHAL_PAGES, label="marshal"))
        aspace.add_vma(VMA(layout.vpn_of(layout.TRAMPOLINE_BASE),
                           layout.TRAMPOLINE_PAGES, label="trampoline"))

        # The loader eagerly materialises code pages and writes the
        # program image (a real execve reads it from the filesystem).
        base_vpn = layout.vpn_of(layout.CODE_BASE)
        for page in range(code_pages):
            pfn = self.alloc.alloc()
            self.phys.zero_frame(pfn)
            chunk = image[page * PAGE_SIZE : (page + 1) * PAGE_SIZE]
            if chunk:
                self.phys.write(pfn, 0, chunk)
            aspace.map_page(base_vpn + page, pfn, writable=False)
        self.cycles.charge("kernel", self.costs.copy_cost(len(image)))
        return aspace

    def _install_std_fds(self, proc: Process) -> None:
        for fd in (uapi.STDIN_FD, uapi.STDOUT_FD, uapi.STDERR_FD):
            proc.fds[fd] = OpenFile(OpenFile.CONSOLE)

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------

    def handle_syscall(self, proc: Process, number: Syscall, args: tuple,
                       extra=None) -> Any:
        """Run one syscall; returns the user-visible result or Blocked."""
        self.cycles.charge("kernel", self.costs.syscall_dispatch)
        self.stats.bump("kernel.syscalls")
        handler = self._handlers.get(number)
        if handler is None:
            return -uapi.ENOSYS
        try:
            return handler(self, proc, args, extra)
        except VFSError as exc:
            return -exc.errno
        except OutOfMemoryError:
            return -uapi.ENOMEM

    # ------------------------------------------------------------------
    # user-memory access (system view — where cloaking bites)
    # ------------------------------------------------------------------

    def copy_from_user(self, proc: Process, vaddr: int, nbytes: int) -> bytes:
        """Read user memory in system view — cloaked buffers read as
        ciphertext.  Faults are handled inline (kernel fixup path)."""
        while True:
            self.mmu.set_context(proc.asid, SYSTEM_VIEW, MODE_KERNEL)
            try:
                return self.mmu.read(vaddr, nbytes)
            except PageFault as fault:
                if not self.handle_page_fault(proc, fault):
                    raise VFSError(uapi.EFAULT, f"copy_from_user {vaddr:#x}")

    def copy_to_user(self, proc: Process, vaddr: int, data: bytes) -> None:
        while True:
            self.mmu.set_context(proc.asid, SYSTEM_VIEW, MODE_KERNEL)
            try:
                self.mmu.write(vaddr, data)
                return
            except PageFault as fault:
                if not self.handle_page_fault(proc, fault):
                    raise VFSError(uapi.EFAULT, f"copy_to_user {vaddr:#x}")

    def read_user_string(self, proc: Process, vaddr: int, length: int) -> str:
        if length < 0 or length > 4096:
            raise VFSError(uapi.EINVAL, "bad string length")
        return self.copy_from_user(proc, vaddr, length).decode(errors="replace")

    # ------------------------------------------------------------------
    # page faults
    # ------------------------------------------------------------------

    def handle_page_fault(self, proc: Process, fault: PageFault) -> bool:
        """Demand paging.  Returns True when resolved (retry the
        access); False means the access was illegal (SIGSEGV)."""
        self.cycles.charge("fault", self.costs.fault_handler)
        self.stats.bump("kernel.page_faults")
        vpn = fault.vaddr >> 12
        vma = proc.aspace.find_vma(vpn)
        if vma is None:
            return False
        if fault.reason is PageFaultReason.PROTECTION:
            return False  # write to read-only mapping
        if fault.reason is PageFaultReason.USER_SUPERVISOR:
            return False
        if proc.aspace.is_mapped(vpn):
            # Present in the guest table yet faulting: nothing the
            # kernel can do (should not happen; be conservative).
            return False
        if vma.kind == VMA.FILE:
            inode = self.fs.get(vma.inode_id)
            pfn = self.fs.page_frame(inode, vma.file_page_of(vpn))
            proc.aspace.map_page(vpn, pfn, writable=vma.writable)
        elif self.reclaimer.swap_in(proc, vpn) is not None:
            pass  # previously evicted anonymous page, now resident again
        else:
            pfn = self.alloc.alloc()
            self.phys.zero_frame(pfn)
            self.cycles.charge("kernel", self.costs.zero_fill)
            proc.aspace.map_page(vpn, pfn, writable=vma.writable)
        return True

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------

    def park(self, proc: Process, blocked: Blocked, number: Syscall,
             args: tuple, extra) -> None:
        proc.pending_syscall = (number, args, extra)
        blocked.channel.add(proc)
        self.scheduler.block(proc)

    def wake_channel(self, channel: WaitChannel) -> int:
        woken = 0
        for proc in channel.take_all():
            self.scheduler.wake(proc)
            woken += 1
        return woken

    def child_channel(self, pid: int) -> WaitChannel:
        channel = self._child_channels.get(pid)
        if channel is None:
            channel = WaitChannel(f"pid{pid}.children")
            self._child_channels[pid] = channel
        return channel

    # -- nanosleep support -------------------------------------------------

    def add_sleeper(self, proc: Process) -> None:
        if proc not in self._sleepers:
            self._sleepers.append(proc)

    def wake_due_sleepers(self) -> int:
        """Wake every sleeper whose deadline has passed."""
        now = self.cycles.total
        due = [p for p in self._sleepers
               if getattr(p, "sleep_until", None) is not None
               and p.sleep_until <= now]
        for proc in due:
            self._sleepers.remove(proc)
            self.scheduler.wake(proc)
        # Re-arm the channel-based parking for those still waiting.
        return len(due)

    def earliest_sleep_deadline(self) -> Optional[int]:
        deadlines = [p.sleep_until for p in self._sleepers
                     if getattr(p, "sleep_until", None) is not None]
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def post_signal(self, target: Process, sig: int) -> None:
        if target.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            return
        action = target.signal_handlers.get(sig, uapi.SIG_DFL)
        if action == uapi.SIG_IGN:
            return
        if action == uapi.SIG_DFL and sig in uapi.IGNORED_SIGNALS:
            return
        if sig not in target.pending_signals:
            target.pending_signals.append(sig)
        # A pending signal interrupts blocking waits (EINTR semantics
        # are simplified: the syscall restarts after delivery).
        if target.state is ProcessState.BLOCKED:
            self.scheduler.wake(target)
        self.stats.bump("kernel.signals_posted")

    def next_deliverable_signal(self, proc: Process) -> Optional[int]:
        if not proc.pending_signals:
            return None
        for sig in list(proc.pending_signals):
            if sig not in proc.signal_mask:
                proc.pending_signals.remove(sig)
                return sig
        return None

    def signal_action(self, proc: Process, sig: int) -> int:
        return proc.signal_handlers.get(sig, uapi.SIG_DFL)

    # ------------------------------------------------------------------
    # exit / reaping
    # ------------------------------------------------------------------

    def do_exit(self, proc: Process, code: int) -> None:
        """Terminate a task.

        A process leader's exit is exit_group(2): every sibling thread
        dies with it.  A lone thread's exit leaves the group running.
        """
        if proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            return
        if not proc.is_thread:
            for sibling in self._live_group_members(proc.tgid):
                if sibling is not proc:
                    self._exit_task(sibling, 128 + uapi.SIGKILL)
        self._exit_task(proc, code)

    def _live_group_members(self, tgid: int) -> List[Process]:
        return [p for p in self.processes.values()
                if p.tgid == tgid
                and p.state not in (ProcessState.ZOMBIE, ProcessState.DEAD)]

    def _exit_task(self, proc: Process, code: int) -> None:
        if proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            return
        last_in_group = len(self._live_group_members(proc.tgid)) == 1
        if last_in_group:
            # The fd table and address space are group resources;
            # only the last task out turns off the lights.
            for fd in list(proc.fds):
                self._close_fd(proc, fd)
        self.arch.notify_thread_exit(proc.pid)
        if last_in_group and proc.asid not in self._released_asids:
            self._release_address_space(proc)
            self._released_asids.add(proc.asid)
        proc.exit_code = code
        proc.exited_at = self.cycles.total
        proc.state = ProcessState.ZOMBIE
        self.scheduler.block(proc)
        proc.state = ProcessState.ZOMBIE  # block() does not override zombie
        parent = self.processes.get(proc.ppid)
        if parent is not None:
            self.post_signal(parent, uapi.SIGCHLD)
            self.wake_channel(self.child_channel(parent.pid))
        else:
            # No parent to reap: release immediately.
            proc.state = ProcessState.DEAD
        self.stats.bump("kernel.exits")

    def _release_address_space(self, proc: Process) -> None:
        page_cache_frames = {
            pfn for inode in self.fs.all_inodes() for pfn in inode.pages.values()
        }
        self.arch.drop_address_space(proc.asid)
        self.reclaimer.swap.drop_address_space(proc.asid)
        proc.aspace.destroy(keep_frames=page_cache_frames)

    def _close_fd(self, proc: Process, fd: int) -> int:
        open_file = proc.fds.pop(fd, None)
        if open_file is None:
            return -uapi.EBADF
        open_file.refcount -= 1
        # Pipe endpoint counts are per fd reference (fork/dup2 add one
        # each), so every close drops one.
        if open_file.kind == OpenFile.PIPE_R and open_file.pipe is not None:
            open_file.pipe.drop_reader()
            self.wake_channel(open_file.pipe.write_channel)
        elif open_file.kind == OpenFile.PIPE_W and open_file.pipe is not None:
            open_file.pipe.drop_writer()
            self.wake_channel(open_file.pipe.read_channel)
        if open_file.refcount > 0:
            return 0
        if open_file.kind == OpenFile.REGULAR:
            inode = self.fs.maybe_get(open_file.inode_id)
            if inode is not None:
                self.fs.writeback(inode)
        return 0

    def reap(self, proc: Process) -> Tuple[int, int]:
        """Collect a zombie: returns (pid, exit_code) and frees it."""
        result = (proc.pid, proc.exit_code if proc.exit_code is not None else 0)
        proc.state = ProcessState.DEAD
        parent = self.processes.get(proc.ppid)
        if parent is not None and proc.pid in parent.children:
            parent.children.remove(proc.pid)
        del self.processes[proc.pid]
        return result

    # ------------------------------------------------------------------
    # introspection for tests / benches
    # ------------------------------------------------------------------

    def process(self, pid: int) -> Optional[Process]:
        return self.processes.get(pid)

    def live_processes(self) -> List[Process]:
        return [p for p in self.processes.values()
                if p.state not in (ProcessState.DEAD,)]
