"""Block cache between the filesystem and the disk.

File data lives in page-cache frames; this layer assigns disk blocks
to (inode, page) pairs and moves whole pages between frames and the
disk.  Transfers go through a *DMA gateway* rather than raw physical
memory: on real Overshadow hardware the VMM interposes on DMA (IOMMU)
so device transfers of cloaked plaintext are encrypted first; the
gateway is that interposition point.  The plain
:class:`PassthroughDMA` is what an unprotected machine would have.
"""

import copy
from typing import Dict, List, Optional, Tuple

from repro.hw.disk import Disk
from repro.hw.phys import PhysicalMemory


class DMAGateway:
    """Interface devices use to touch guest-physical frames."""

    def read_frame(self, gpfn: int) -> bytes:
        raise NotImplementedError

    def write_frame(self, gpfn: int, data: bytes) -> None:
        raise NotImplementedError


class PassthroughDMA(DMAGateway):
    """Direct DMA, no VMM interposition (used by hw-only tests)."""

    def __init__(self, phys: PhysicalMemory):
        self._phys = phys

    def read_frame(self, gpfn: int) -> bytes:
        return self._phys.read_frame(gpfn)

    def write_frame(self, gpfn: int, data: bytes) -> None:
        self._phys.write_frame(gpfn, data)


class BlockCache:
    """Allocates disk blocks and pages file data in and out."""

    def __init__(self, disk: Disk, dma: DMAGateway):
        self._disk = disk
        self._dma = dma
        self._free: List[int] = list(range(disk.num_blocks - 1, -1, -1))
        self._blocks: Dict[Tuple[int, int], int] = {}

    def __deepcopy__(self, memo):
        # Snapshot hot path: the block free list is ~disk-size ints;
        # copy it (and the lba map, whose keys/values are all ints) at
        # C speed.  Order is preserved exactly — it determines future
        # block placement.  Disk/DMA still go through the memo so the
        # clone shares its machine's instances, not ours.
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "_free":
                clone._free = list(value)
            elif key == "_blocks":
                clone._blocks = dict(value)
            else:
                setattr(clone, key, copy.deepcopy(value, memo))
        return clone

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def block_of(self, inode_id: int, page_index: int) -> Optional[int]:
        return self._blocks.get((inode_id, page_index))

    def _ensure_block(self, inode_id: int, page_index: int) -> int:
        key = (inode_id, page_index)
        lba = self._blocks.get(key)
        if lba is None:
            if not self._free:
                raise OSError("disk full")
            lba = self._free.pop()
            self._blocks[key] = lba
        return lba

    def writeback_page(self, inode_id: int, page_index: int, gpfn: int) -> int:
        """Flush one page-cache frame to disk; returns the lba used."""
        lba = self._ensure_block(inode_id, page_index)
        self._disk.write_block(lba, self._dma.read_frame(gpfn))
        return lba

    def readin_page(self, inode_id: int, page_index: int, gpfn: int) -> bool:
        """Fill a frame from disk; returns False (and zeroes the frame)
        when the page was never written."""
        lba = self._blocks.get((inode_id, page_index))
        if lba is None:
            self._dma.write_frame(gpfn, bytes(self._disk.block_size))
            return False
        self._dma.write_frame(gpfn, self._disk.read_block(lba))
        return True

    def drop_page(self, inode_id: int, page_index: int) -> bool:
        """Release one page's block, if allocated."""
        lba = self._blocks.pop((inode_id, page_index), None)
        if lba is None:
            return False
        self._free.append(lba)
        return True

    def drop_file(self, inode_id: int) -> int:
        """Release all blocks of a deleted file."""
        victims = [key for key in self._blocks if key[0] == inode_id]
        for key in victims:
            self._free.append(self._blocks.pop(key))
        return len(victims)
