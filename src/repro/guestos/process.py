"""Processes and demand-paged address spaces."""

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.guestos import layout, uapi
from repro.hw.pagetable import PageTableWalker
from repro.hw.params import PAGE_SIZE
from repro.hw.phys import FrameAllocator, PhysicalMemory


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"
    DEAD = "dead"


class VMA:
    """One virtual memory area: a contiguous, uniformly-typed mapping."""

    __slots__ = ("start_vpn", "npages", "writable", "kind", "inode_id",
                 "file_page", "shared", "label")

    ANON = "anon"
    FILE = "file"

    def __init__(self, start_vpn: int, npages: int, writable: bool = True,
                 kind: str = ANON, inode_id: Optional[int] = None,
                 file_page: int = 0, shared: bool = False, label: str = ""):
        if npages <= 0:
            raise ValueError("empty VMA")
        self.start_vpn = start_vpn
        self.npages = npages
        self.writable = writable
        self.kind = kind
        self.inode_id = inode_id
        self.file_page = file_page
        self.shared = shared
        self.label = label

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.npages

    def __contains__(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    def overlaps(self, start_vpn: int, end_vpn: int) -> bool:
        return self.start_vpn < end_vpn and start_vpn < self.end_vpn

    def file_page_of(self, vpn: int) -> int:
        return self.file_page + (vpn - self.start_vpn)

    def __repr__(self) -> str:
        return (f"VMA({self.start_vpn:#x}+{self.npages}p {self.kind}"
                f"{' shared' if self.shared else ''} {self.label})")


class AddressSpace:
    """Page tables + VMA list of one process.

    Pages are mapped on demand by the kernel's page-fault handler;
    :meth:`add_vma` only records the region.  All PTE edits flow
    through here so the ``invlpg`` callback keeps the VMM's derived
    state coherent.
    """

    def __init__(self, asid: int, phys: PhysicalMemory, alloc: FrameAllocator,
                 invlpg: Callable[[int, int], None]):
        self.asid = asid
        self._phys = phys
        self._alloc = alloc
        self._invlpg = invlpg
        self._walker = PageTableWalker(phys)
        self.root_pfn = alloc.alloc()
        phys.zero_frame(self.root_pfn)
        self.vmas: List[VMA] = []
        self.brk_vaddr = layout.HEAP_BASE
        self._mmap_cursor = layout.MMAP_BASE
        #: Frames owned by this AS (for teardown), vpn -> pfn.  Exact
        #: mirror of the present leaves: every PTE edit flows through
        #: map_page/unmap_page, so scans over the mapping set read this
        #: dict instead of walking table pages.
        self._frames: Dict[int, int] = {}
        #: Second-level table pages, directory index -> pfn.
        self._tables: Dict[int, int] = {}

    # -- VMA management ------------------------------------------------------

    def add_vma(self, vma: VMA) -> VMA:
        for existing in self.vmas:
            if existing.overlaps(vma.start_vpn, vma.end_vpn):
                raise ValueError(f"{vma} overlaps {existing}")
        self.vmas.append(vma)
        return vma

    def find_vma(self, vpn: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vpn in vma:
                return vma
        return None

    def remove_vma(self, start_vpn: int) -> Optional[VMA]:
        for i, vma in enumerate(self.vmas):
            if vma.start_vpn == start_vpn:
                del self.vmas[i]
                return vma
        return None

    def alloc_mmap_region(self, npages: int) -> int:
        """Pick a free mmap-area address (simple bump allocation)."""
        start = self._mmap_cursor
        self._mmap_cursor += npages << 12
        return start

    # -- page mapping (called by the kernel fault handler / loader) -----------

    def map_page(self, vpn: int, pfn: int, writable: bool) -> None:
        def alloc_table() -> int:
            table_pfn = self._new_table()
            self._tables[(vpn >> 10) & 0x3FF] = table_pfn
            return table_pfn

        self._walker.map(self.root_pfn, vpn, pfn, writable, user=True,
                         alloc_table=alloc_table)
        self._frames[vpn] = pfn
        self._invlpg(self.asid, vpn)

    def protect_page(self, vpn: int, writable: bool) -> None:
        self._walker.set_writable(self.root_pfn, vpn, writable)
        self._invlpg(self.asid, vpn)

    def unmap_page(self, vpn: int) -> Optional[int]:
        leaf = self._walker.unmap(self.root_pfn, vpn)
        self._invlpg(self.asid, vpn)
        self._frames.pop(vpn, None)
        return leaf.pfn if leaf else None

    def is_mapped(self, vpn: int) -> bool:
        return self._walker.walk(self.root_pfn, vpn) is not None

    def frame_of(self, vpn: int) -> Optional[int]:
        leaf = self._walker.walk(self.root_pfn, vpn)
        return leaf.pfn if leaf else None

    def mapped_pages(self) -> List[Tuple[int, int]]:
        # vpn-ascending, same order a table-page scan would produce.
        return sorted(self._frames.items())

    def _new_table(self) -> int:
        pfn = self._alloc.alloc()
        self._phys.zero_frame(pfn)
        return pfn

    # -- teardown ------------------------------------------------------------------

    def destroy(self, keep_frames: Optional[set] = None) -> None:
        """Free every owned frame and the page-table pages.

        ``keep_frames`` names pfns that outlive the AS (shared file
        page-cache frames owned by the filesystem).
        """
        keep = keep_frames or set()
        # Free in the exact order a table scan yields: leaves by
        # ascending vpn, then table pages by ascending directory index,
        # then the root — allocator free-list order shapes future
        # allocations, so this order is part of the cycle contract.
        for vpn in sorted(self._frames):
            pfn = self._frames[vpn]
            if pfn not in keep and self._alloc.is_allocated(pfn):
                self._alloc.free(pfn)
        for l1 in sorted(self._tables):
            self._alloc.free(self._tables[l1])
        self._alloc.free(self.root_pfn)
        self.vmas.clear()
        self._frames.clear()
        self._tables.clear()


class OpenFile:
    """A file-description: shared offset + flags over a VFS object."""

    __slots__ = ("kind", "inode_id", "offset", "flags", "pipe", "refcount")

    REGULAR = "regular"
    CONSOLE = "console"
    PIPE_R = "pipe-r"
    PIPE_W = "pipe-w"
    NULL = "null"

    def __init__(self, kind: str, inode_id: Optional[int] = None,
                 flags: int = 0, pipe=None):
        self.kind = kind
        self.inode_id = inode_id
        self.offset = 0
        self.flags = flags
        self.pipe = pipe
        self.refcount = 1

    def __repr__(self) -> str:
        return f"OpenFile({self.kind}, inode={self.inode_id}, off={self.offset})"


class Process:
    """One guest process (single-threaded; pid doubles as tid)."""

    def __init__(self, pid: int, ppid: int, name: str,
                 address_space: AddressSpace, runtime, cloaked: bool = False,
                 tgid: Optional[int] = None):
        self.pid = pid
        self.ppid = ppid
        #: Thread group id: equals pid for a process leader; threads
        #: share the leader's tgid (and address space, and fd table).
        self.tgid = tgid if tgid is not None else pid
        self.name = name
        self.aspace = address_space
        self.runtime = runtime
        self.cloaked = cloaked
        self.state = ProcessState.READY
        self.exit_code: Optional[int] = None
        self.fds: Dict[int, OpenFile] = {}
        self.next_fd = 3
        self.cwd = "/"
        self.pending_signals: List[int] = []
        self.signal_handlers: Dict[int, int] = {}
        self.signal_mask: set = set()
        self.children: List[int] = []
        #: In-flight blocked syscall (number, args, extra) for restart.
        self.pending_syscall: Optional[tuple] = None
        #: Result to deliver to the runtime when this process resumes.
        self.resume_result = None
        #: Kernel-side PCB register snapshot (what was architecturally
        #: visible at the last trap — scrubbed values for cloaked
        #: threads; the VMM's CTC holds their real state).
        self.saved_regs: Optional[dict] = None
        #: nanosleep deadline (virtual cycles), if sleeping.
        self.sleep_until: Optional[int] = None
        #: Virtual-cycle timestamps for accounting.
        self.spawned_at = 0
        self.exited_at: Optional[int] = None

    @property
    def asid(self) -> int:
        return self.aspace.asid

    @property
    def is_thread(self) -> bool:
        return self.tgid != self.pid

    def alloc_fd(self, open_file: OpenFile) -> int:
        fd = self.next_fd
        while fd in self.fds:
            fd += 1
        self.next_fd = fd + 1
        self.fds[fd] = open_file
        return fd

    def fd(self, fd_num: int) -> Optional[OpenFile]:
        return self.fds.get(fd_num)

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.name!r}, {self.state.value})"
