"""Process syscalls: lifecycle, signals, scheduling."""

from typing import Dict

from repro.guestos import layout, uapi
from repro.guestos.process import OpenFile, Process, ProcessState, VMA
from repro.guestos.uapi import Blocked, Syscall
from repro.hw.mmu import MODE_KERNEL, SYSTEM_VIEW
from repro.hw.params import PAGE_SIZE


def sys_exit(kernel, proc: Process, args, extra):
    (code,) = args
    kernel.do_exit(proc, code)
    return code


def sys_getpid(kernel, proc: Process, args, extra):
    return proc.pid


def sys_getppid(kernel, proc: Process, args, extra):
    return proc.ppid


def sys_fork(kernel, proc: Process, args, extra):
    """Clone the calling process.

    The child's address space is an eager copy made through the MMU in
    system view — so every cloaked plaintext page of the parent is
    encrypted in passing, which is exactly why cloaked fork is the
    paper's worst-case operation.
    """
    if extra is None:
        return -uapi.EINVAL
    child_entry, child_args = extra

    child_pid = kernel._next_pid
    kernel._next_pid += 1
    child_aspace = kernel._fork_address_space(proc)
    kernel.arch.notify_fork(proc.pid, child_pid, child_aspace.asid)

    child_runtime = proc.runtime.make_child(child_entry, child_args)
    child = Process(child_pid, proc.pid, f"{proc.name}", child_aspace,
                    child_runtime, cloaked=proc.cloaked)
    child.spawned_at = kernel.cycles.total
    child.signal_handlers = dict(proc.signal_handlers)
    child.signal_mask = set(proc.signal_mask)
    child.cwd = proc.cwd
    for fd, open_file in proc.fds.items():
        open_file.refcount += 1
        if open_file.kind == OpenFile.PIPE_R and open_file.pipe is not None:
            open_file.pipe.add_reader()
        elif open_file.kind == OpenFile.PIPE_W and open_file.pipe is not None:
            open_file.pipe.add_writer()
        child.fds[fd] = open_file
    child.next_fd = proc.next_fd
    child_runtime.start_child(child_pid)

    kernel.processes[child_pid] = child
    proc.children.append(child_pid)
    kernel.scheduler.enqueue(child)
    kernel.stats.bump("kernel.forks")
    return child_pid


def _fork_address_space(kernel, parent: Process):
    """Eagerly copy a process's address space (no COW, like early
    Unix; the simple policy keeps the cloaking interactions obvious)."""
    aspace = kernel._build_empty_address_space()
    for vma in parent.aspace.vmas:
        aspace.add_vma(VMA(vma.start_vpn, vma.npages, vma.writable, vma.kind,
                           vma.inode_id, vma.file_page, vma.shared, vma.label))
    aspace.brk_vaddr = parent.aspace.brk_vaddr
    aspace._mmap_cursor = parent.aspace._mmap_cursor

    for vpn, pfn in parent.aspace.mapped_pages():
        vma = parent.aspace.find_vma(vpn)
        if vma is not None and vma.kind == VMA.FILE:
            # Shared page-cache frame: both processes map the same one.
            aspace.map_page(vpn, pfn, writable=vma.writable)
            continue
        child_pfn = kernel.alloc.alloc()
        writable = vma.writable if vma is not None else True
        # Map writable for the copy itself; final permissions follow
        # the VMA (read-only code pages included).
        aspace.map_page(vpn, child_pfn, writable=True)
        vaddr = layout.vaddr_of(vpn)
        # Copy through the MMU in system view: the visible (possibly
        # just-encrypted) bytes are what the child receives.
        kernel.mmu.set_context(parent.asid, SYSTEM_VIEW, MODE_KERNEL)
        data = kernel.mmu.read(vaddr, PAGE_SIZE)
        kernel.mmu.set_context(aspace.asid, SYSTEM_VIEW, MODE_KERNEL)
        kernel.mmu.write(vaddr, data)
        if not writable:
            aspace.protect_page(vpn, writable=False)
    return aspace


def sys_exec(kernel, proc: Process, args, extra):
    path_vaddr, path_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    name = path.rsplit("/", 1)[-1]
    entry = kernel._registry.get(name)
    if entry is None:
        return -uapi.ENOENT

    # The old image (and, for cloaked processes, the old protection
    # domain) dies here; fds survive, POSIX-style.
    kernel.arch.notify_thread_exit(proc.pid)
    kernel._release_address_space(proc)
    proc.aspace = kernel._build_address_space(entry.image)
    proc.name = name
    program = entry.program_factory()
    argv = tuple(extra) if extra else ()
    proc.runtime = entry.runtime_factory(program, argv)
    proc.runtime.start(proc.pid)
    proc.pending_signals.clear()
    kernel.stats.bump("kernel.execs")
    return 0


def sys_waitpid(kernel, proc: Process, args, extra):
    (want_pid,) = args
    candidates = [
        kernel.processes[cpid]
        for cpid in proc.children
        if cpid in kernel.processes and (want_pid in (-1, cpid))
    ]
    if not candidates:
        return -uapi.ECHILD
    for child in candidates:
        if child.state is ProcessState.ZOMBIE:
            return kernel.reap(child)
    return Blocked(kernel.child_channel(proc.pid))


def sys_kill(kernel, proc: Process, args, extra):
    target_pid, sig = args
    target = kernel.processes.get(target_pid)
    if target is None or target.state is ProcessState.DEAD:
        return -uapi.ESRCH
    if sig == 0:
        return 0  # existence probe
    kernel.post_signal(target, sig)
    return 0


def sys_sigaction(kernel, proc: Process, args, extra):
    sig, action = args
    if sig == uapi.SIGKILL:
        return -uapi.EINVAL
    if action not in (uapi.SIG_DFL, uapi.SIG_IGN, 2):
        return -uapi.EINVAL
    proc.signal_handlers[sig] = action
    return 0


def sys_sigprocmask(kernel, proc: Process, args, extra):
    sig, block = args
    if block:
        proc.signal_mask.add(sig)
    else:
        proc.signal_mask.discard(sig)
    return 0


def sys_yield(kernel, proc: Process, args, extra):
    return 0  # the machine loop rotates the timeslice on YIELD


def sys_gettime(kernel, proc: Process, args, extra):
    return kernel.cycles.total


def sys_nanosleep(kernel, proc: Process, args, extra):
    (duration,) = args
    if duration < 0:
        return -uapi.EINVAL
    now = kernel.cycles.total
    wake_at = getattr(proc, "sleep_until", None)
    if wake_at is None:
        proc.sleep_until = now + duration
        kernel.add_sleeper(proc)
        return Blocked(kernel.sleep_channel)
    if now >= wake_at:
        proc.sleep_until = None
        return 0
    kernel.add_sleeper(proc)
    return Blocked(kernel.sleep_channel)


def handlers() -> Dict[Syscall, callable]:
    return {
        Syscall.EXIT: sys_exit,
        Syscall.GETPID: sys_getpid,
        Syscall.GETPPID: sys_getppid,
        Syscall.FORK: sys_fork,
        Syscall.EXEC: sys_exec,
        Syscall.WAITPID: sys_waitpid,
        Syscall.KILL: sys_kill,
        Syscall.SIGACTION: sys_sigaction,
        Syscall.SIGPROCMASK: sys_sigprocmask,
        Syscall.YIELD: sys_yield,
        Syscall.GETTIME: sys_gettime,
        Syscall.NANOSLEEP: sys_nanosleep,
    }
