"""File syscalls: open/close/read/write/seek/stat and friends.

Handler convention: ``fn(kernel, proc, args, extra)`` returning the
user-visible result (negative errno on failure) or ``Blocked``.
"""

from typing import Dict

from repro.guestos import uapi
from repro.guestos.process import OpenFile, Process
from repro.guestos.ramfs import InodeType
from repro.guestos.uapi import Blocked, Syscall
from repro.guestos.vfs import VFSError


def sys_open(kernel, proc: Process, args, extra):
    path_vaddr, path_len, flags = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    try:
        inode = kernel.vfs.resolve(path)
    except VFSError as exc:
        if exc.errno != uapi.ENOENT or not flags & uapi.O_CREAT:
            return -exc.errno
        inode = kernel.vfs.create_file(path)

    if inode.itype is InodeType.DIRECTORY:
        if flags & uapi.O_ACCMODE != uapi.O_RDONLY:
            return -uapi.EISDIR
        open_file = OpenFile(OpenFile.REGULAR, inode.inode_id, flags)
    elif inode.itype is InodeType.DEVICE:
        kind = OpenFile.CONSOLE if inode.device == "console" else OpenFile.NULL
        open_file = OpenFile(kind, inode.inode_id, flags)
    elif inode.itype is InodeType.FIFO:
        pipe = inode.pipe
        if flags & uapi.O_ACCMODE == uapi.O_RDONLY:
            pipe.add_reader()
            # A reader's arrival unblocks writers parked in open(2).
            kernel.wake_channel(pipe.open_channel)
            open_file = OpenFile(OpenFile.PIPE_R, inode.inode_id, flags, pipe)
        else:
            if pipe.readers == 0:
                # POSIX FIFO semantics (one-sided to stay restartable):
                # opening for write blocks until a reader exists.
                return Blocked(pipe.open_channel)
            pipe.add_writer()
            # Readers parked before any writer existed can proceed.
            kernel.wake_channel(pipe.read_channel)
            open_file = OpenFile(OpenFile.PIPE_W, inode.inode_id, flags, pipe)
    else:
        if flags & uapi.O_TRUNC and flags & uapi.O_ACCMODE != uapi.O_RDONLY:
            kernel.fs.truncate(inode, 0)
        open_file = OpenFile(OpenFile.REGULAR, inode.inode_id, flags)
    return proc.alloc_fd(open_file)


def sys_close(kernel, proc: Process, args, extra):
    (fd,) = args
    return kernel._close_fd(proc, fd)


def sys_read(kernel, proc: Process, args, extra):
    fd, buf_vaddr, nbytes = args
    open_file = proc.fd(fd)
    if open_file is None:
        return -uapi.EBADF
    if nbytes < 0:
        return -uapi.EINVAL

    if open_file.kind == OpenFile.REGULAR:
        inode = kernel.fs.get(open_file.inode_id)
        if inode.itype is InodeType.DIRECTORY:
            return -uapi.EISDIR
        data = kernel.fs.read(inode, open_file.offset, nbytes)
        kernel.copy_to_user(proc, buf_vaddr, data)
        open_file.offset += len(data)
        return len(data)
    if open_file.kind in (OpenFile.CONSOLE, OpenFile.NULL):
        return 0  # no console input stream
    if open_file.kind == OpenFile.PIPE_R:
        data = open_file.pipe.read(nbytes)
        if data is None:
            return Blocked(open_file.pipe.read_channel)
        kernel.copy_to_user(proc, buf_vaddr, data)
        kernel.wake_channel(open_file.pipe.write_channel)
        return len(data)
    return -uapi.EBADF


def sys_write(kernel, proc: Process, args, extra):
    fd, buf_vaddr, nbytes = args
    open_file = proc.fd(fd)
    if open_file is None:
        return -uapi.EBADF
    if nbytes < 0:
        return -uapi.EINVAL

    if open_file.kind == OpenFile.CONSOLE:
        data = kernel.copy_from_user(proc, buf_vaddr, nbytes)
        kernel.console.write(proc.pid, data)
        return nbytes
    if open_file.kind == OpenFile.NULL:
        return nbytes
    if open_file.kind == OpenFile.REGULAR:
        if open_file.flags & uapi.O_ACCMODE == uapi.O_RDONLY:
            return -uapi.EACCES
        inode = kernel.fs.get(open_file.inode_id)
        data = kernel.copy_from_user(proc, buf_vaddr, nbytes)
        offset = inode.size if open_file.flags & uapi.O_APPEND else open_file.offset
        written = kernel.fs.write(inode, offset, data)
        open_file.offset = offset + written
        return written
    if open_file.kind == OpenFile.PIPE_W:
        pipe = open_file.pipe
        data = kernel.copy_from_user(proc, buf_vaddr, nbytes)
        try:
            written = pipe.write(data)
        except BrokenPipeError:
            kernel.post_signal(proc, uapi.SIGPIPE)
            return -uapi.EPIPE
        if written is None:
            return Blocked(pipe.write_channel)
        kernel.wake_channel(pipe.read_channel)
        return written
    return -uapi.EBADF


def sys_lseek(kernel, proc: Process, args, extra):
    fd, offset, whence = args
    open_file = proc.fd(fd)
    if open_file is None:
        return -uapi.EBADF
    if open_file.kind != OpenFile.REGULAR:
        return -uapi.ESPIPE
    inode = kernel.fs.get(open_file.inode_id)
    if whence == uapi.SEEK_SET:
        new = offset
    elif whence == uapi.SEEK_CUR:
        new = open_file.offset + offset
    elif whence == uapi.SEEK_END:
        new = inode.size + offset
    else:
        return -uapi.EINVAL
    if new < 0:
        return -uapi.EINVAL
    open_file.offset = new
    return new


def sys_stat(kernel, proc: Process, args, extra):
    path_vaddr, path_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    inode = kernel.vfs.resolve(path)
    return kernel.vfs.stat(inode)


def sys_fstat(kernel, proc: Process, args, extra):
    (fd,) = args
    open_file = proc.fd(fd)
    if open_file is None:
        return -uapi.EBADF
    if open_file.inode_id is None:
        return (uapi.S_IFIFO, 0, 0)
    inode = kernel.fs.maybe_get(open_file.inode_id)
    if inode is None:
        return -uapi.EBADF
    return kernel.vfs.stat(inode)


def sys_unlink(kernel, proc: Process, args, extra):
    path_vaddr, path_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    kernel.vfs.unlink(path)
    return 0


def sys_mkdir(kernel, proc: Process, args, extra):
    path_vaddr, path_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    kernel.vfs.mkdir(path)
    return 0


def sys_mkfifo(kernel, proc: Process, args, extra):
    path_vaddr, path_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    kernel.vfs.mkfifo(path)
    return 0


def sys_rename(kernel, proc: Process, args, extra):
    old_vaddr, old_len, new_vaddr, new_len = args
    old_path = kernel.read_user_string(proc, old_vaddr, old_len)
    new_path = kernel.read_user_string(proc, new_vaddr, new_len)
    kernel.vfs.rename(old_path, new_path)
    return 0


def sys_readdir(kernel, proc: Process, args, extra):
    path_vaddr, path_len, buf_vaddr, buf_len = args
    path = kernel.read_user_string(proc, path_vaddr, path_len)
    names = kernel.vfs.readdir(path)
    blob = b"\x00".join(name.encode() for name in names)
    if len(blob) > buf_len:
        return -uapi.EINVAL
    kernel.copy_to_user(proc, buf_vaddr, blob)
    return len(blob)


def sys_truncate(kernel, proc: Process, args, extra):
    fd, size = args
    open_file = proc.fd(fd)
    if open_file is None or open_file.kind != OpenFile.REGULAR:
        return -uapi.EBADF
    if size < 0:
        return -uapi.EINVAL
    inode = kernel.fs.get(open_file.inode_id)
    kernel.fs.truncate(inode, size)
    return 0


def sys_sync(kernel, proc: Process, args, extra):
    count = 0
    for inode in kernel.fs.all_inodes():
        if inode.itype is InodeType.REGULAR:
            count += kernel.fs.writeback(inode)
    return count


def sys_dup2(kernel, proc: Process, args, extra):
    old_fd, new_fd = args
    open_file = proc.fd(old_fd)
    if open_file is None or new_fd < 0:
        return -uapi.EBADF
    if new_fd == old_fd:
        return new_fd
    if new_fd in proc.fds:
        kernel._close_fd(proc, new_fd)
    open_file.refcount += 1
    proc.fds[new_fd] = open_file
    return new_fd


def handlers() -> Dict[Syscall, callable]:
    return {
        Syscall.OPEN: sys_open,
        Syscall.CLOSE: sys_close,
        Syscall.READ: sys_read,
        Syscall.WRITE: sys_write,
        Syscall.LSEEK: sys_lseek,
        Syscall.STAT: sys_stat,
        Syscall.FSTAT: sys_fstat,
        Syscall.UNLINK: sys_unlink,
        Syscall.MKDIR: sys_mkdir,
        Syscall.MKFIFO: sys_mkfifo,
        Syscall.READDIR: sys_readdir,
        Syscall.RENAME: sys_rename,
        Syscall.TRUNCATE: sys_truncate,
        Syscall.SYNC: sys_sync,
        Syscall.DUP2: sys_dup2,
    }
