"""User-facing kernel ABI: syscall numbers, errno, flags, and the
user-operation protocol.

Guest programs execute as generators yielding :class:`UserOp` objects;
the machine loop performs each op (charging virtual cycles, taking
faults, trapping into the kernel for syscalls) and sends the result
back into the generator.  Both the kernel and application code import
this module — it is the ABI boundary, like ``<unistd.h>``.

Buffer-carrying syscalls pass *virtual addresses*, and the kernel
copies through the MMU in system view.  This is not a stylistic
choice: it is the load-bearing detail that makes cloaking semantics
observable (a kernel copy from a cloaked buffer yields ciphertext,
which is why the shim must marshal).
"""

import enum


class Syscall(enum.IntEnum):
    """Syscall numbers."""

    EXIT = 1
    GETPID = 2
    GETPPID = 3
    READ = 4
    WRITE = 5
    OPEN = 6
    CLOSE = 7
    LSEEK = 8
    STAT = 9
    FSTAT = 10
    UNLINK = 11
    MKDIR = 12
    READDIR = 13
    TRUNCATE = 14
    MMAP = 15
    MUNMAP = 16
    BRK = 17
    FORK = 18
    EXEC = 19
    WAITPID = 20
    KILL = 21
    SIGACTION = 22
    SIGPROCMASK = 23
    PIPE = 24
    DUP2 = 25
    YIELD = 26
    GETTIME = 27
    SYNC = 28
    MKFIFO = 29
    NANOSLEEP = 30
    THREAD_CREATE = 31
    THREAD_JOIN = 32
    RENAME = 33


# -- errno values (returned as negative numbers) -----------------------------

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EBADF = 9
ECHILD = 10
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
EMFILE = 24
ESPIPE = 29
EPIPE = 32
ENOSYS = 38
ENOTEMPTY = 39

ERRNO_NAMES = {
    EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
    EBADF: "EBADF", ECHILD: "ECHILD", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM",
    EACCES: "EACCES", EFAULT: "EFAULT", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR",
    EISDIR: "EISDIR", EINVAL: "EINVAL", EMFILE: "EMFILE", ESPIPE: "ESPIPE",
    EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOTEMPTY: "ENOTEMPTY",
}


def errno_name(code: int) -> str:
    return ERRNO_NAMES.get(abs(code), f"E#{abs(code)}")


# -- open(2) flags -------------------------------------------------------------

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_ACCMODE = 0x3
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# -- mmap(2) flags ---------------------------------------------------------------

PROT_READ = 0x1
PROT_WRITE = 0x2
MAP_PRIVATE = 0x02
MAP_SHARED = 0x01
MAP_ANON = 0x20

# -- signals -----------------------------------------------------------------------

SIGKILL = 9
SIGSEGV = 11
SIGPIPE = 13
SIGTERM = 15
SIGCHLD = 17
SIGUSR1 = 10
SIGUSR2 = 12

#: Default-action classification.
FATAL_SIGNALS = frozenset({SIGKILL, SIGSEGV, SIGPIPE, SIGTERM})
IGNORED_SIGNALS = frozenset({SIGCHLD})

SIG_DFL = 0
SIG_IGN = 1

#: File descriptor conventions.
STDIN_FD = 0
STDOUT_FD = 1
STDERR_FD = 2

#: stat(2) result file types.
S_IFREG = 1
S_IFDIR = 2
S_IFIFO = 3
S_IFCHR = 4


# -- the user-operation protocol -----------------------------------------------------


class UserOp:
    """Base class for operations a user runtime yields to the machine."""

    __slots__ = ()


class Alu(UserOp):
    """Pure compute: ``units`` cycles of application work."""

    __slots__ = ("units",)

    def __init__(self, units: int):
        self.units = units


class Load(UserOp):
    """Read ``size`` bytes of user memory at ``vaddr``; result: bytes."""

    __slots__ = ("vaddr", "size")

    def __init__(self, vaddr: int, size: int):
        self.vaddr = vaddr
        self.size = size


class Store(UserOp):
    """Write ``data`` to user memory at ``vaddr``; result: None."""

    __slots__ = ("vaddr", "data")

    def __init__(self, vaddr: int, data: bytes):
        self.vaddr = vaddr
        self.data = data


class Copy(UserOp):
    """User-level memcpy of ``nbytes`` from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "nbytes")

    def __init__(self, src: int, dst: int, nbytes: int):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes


class SyscallOp(UserOp):
    """Trap into the guest kernel.

    ``extra`` carries runtime-level payload the kernel never sees
    (e.g. the child entry callable for fork, argv for exec); it models
    state that lives in the application's own (cloaked) memory.
    """

    __slots__ = ("number", "args", "extra")

    def __init__(self, number: Syscall, args: tuple = (), extra=None):
        self.number = number
        self.args = args
        self.extra = extra


class HypercallOp(UserOp):
    """Call the VMM directly (shim use only); invisible to the kernel."""

    __slots__ = ("number", "args")

    def __init__(self, number, args: tuple = ()):
        self.number = number
        self.args = args


class SetReg(UserOp):
    """Place a value in an architectural register (secrets for the
    register-scrubbing tests, syscall argument staging)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int):
        self.name = name
        self.value = value


class GetReg(UserOp):
    """Read an architectural register; result: int."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Blocked:
    """Returned by a syscall handler that must wait; the process parks
    on ``channel`` and the syscall restarts after :meth:`wake`."""

    __slots__ = ("channel",)

    def __init__(self, channel: "WaitChannel"):
        self.channel = channel


class WaitChannel:
    """A named rendezvous point processes can sleep on."""

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str):
        self.name = name
        self._waiters = []

    def add(self, proc) -> None:
        if proc not in self._waiters:
            self._waiters.append(proc)

    def take_all(self):
        waiters, self._waiters = self._waiters, []
        return waiters

    def __repr__(self) -> str:
        return f"WaitChannel({self.name}, waiters={len(self._waiters)})"
