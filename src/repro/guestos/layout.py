"""Virtual address-space layout for guest processes.

A fixed layout keeps programs, the shim, and the loader in agreement.
The marshalling and trampoline regions exist for cloaked processes:
they are deliberately *excluded* from the cloaked ranges so the kernel
can read syscall arguments from them.
"""

from repro.hw.params import PAGE_SHIFT, PAGE_SIZE

CODE_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
MMAP_BASE = 0x4000_0000
MARSHAL_BASE = 0x6000_0000
TRAMPOLINE_BASE = 0x6100_0000
STACK_TOP = 0x7FFF_F000

#: Default sizes, pages.
CODE_PAGES = 2
DATA_MAX_PAGES = 4096
STACK_PAGES = 16
MARSHAL_PAGES = 8
TRAMPOLINE_PAGES = 1
HEAP_MAX_PAGES = 4096
MMAP_MAX_PAGES = 16384


def vpn_of(vaddr: int) -> int:
    return vaddr >> PAGE_SHIFT

def vaddr_of(vpn: int) -> int:
    return vpn << PAGE_SHIFT

def pages_spanned(vaddr: int, nbytes: int) -> int:
    """Number of pages the byte range [vaddr, vaddr+nbytes) touches."""
    if nbytes == 0:
        return 0
    first = vpn_of(vaddr)
    last = vpn_of(vaddr + nbytes - 1)
    return last - first + 1

def page_count(nbytes: int) -> int:
    """Pages needed to hold ``nbytes``."""
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
