"""In-memory filesystem with a disk-backed page cache.

Regular-file data lives in page-cache frames (allocatable to user
mappings via mmap, which is how the shim's cloaked-file emulation
works).  Pages can be written back to and evicted to the disk through
the block cache, so tests and benchmarks can force the
data-at-rest path.
"""

import enum
from typing import Dict, Iterator, List, Optional

from repro.guestos.blockcache import BlockCache
from repro.hw.cycles import CycleAccount
from repro.hw.params import CostTable, PAGE_SIZE
from repro.hw.phys import FrameAllocator, PhysicalMemory


class InodeType(enum.Enum):
    REGULAR = "regular"
    DIRECTORY = "directory"
    FIFO = "fifo"
    DEVICE = "device"


class Inode:
    """One filesystem object."""

    __slots__ = ("inode_id", "itype", "size", "pages", "entries", "nlink",
                 "pipe", "device")

    def __init__(self, inode_id: int, itype: InodeType):
        self.inode_id = inode_id
        self.itype = itype
        self.size = 0
        #: page index -> page-cache pfn (REGULAR only).
        self.pages: Dict[int, int] = {}
        #: name -> inode_id (DIRECTORY only).
        self.entries: Dict[str, int] = {}
        self.nlink = 1
        #: FIFO: lazily attached Pipe object.
        self.pipe = None
        #: DEVICE: device name ("console", "null").
        self.device: Optional[str] = None

    def __repr__(self) -> str:
        return f"Inode({self.inode_id}, {self.itype.value}, size={self.size})"


class RamFS:
    """Inode store + data path.  Path logic lives in the VFS layer."""

    def __init__(self, phys: PhysicalMemory, alloc: FrameAllocator,
                 cache: BlockCache, cycles: CycleAccount, costs: CostTable):
        self._phys = phys
        self._alloc = alloc
        self._cache = cache
        self._cycles = cycles
        self._costs = costs
        self._inodes: Dict[int, Inode] = {}
        self._next_id = 1
        self.root = self.new_inode(InodeType.DIRECTORY)

    # -- inode lifecycle ------------------------------------------------------

    def new_inode(self, itype: InodeType) -> Inode:
        inode = Inode(self._next_id, itype)
        self._next_id += 1
        self._inodes[inode.inode_id] = inode
        return inode

    def get(self, inode_id: int) -> Inode:
        return self._inodes[inode_id]

    def maybe_get(self, inode_id: int) -> Optional[Inode]:
        return self._inodes.get(inode_id)

    def drop_inode(self, inode: Inode) -> None:
        for pfn in inode.pages.values():
            self._alloc.free(pfn)
        inode.pages.clear()
        self._cache.drop_file(inode.inode_id)
        del self._inodes[inode.inode_id]

    def all_inodes(self) -> Iterator[Inode]:
        return iter(list(self._inodes.values()))

    # -- page cache ---------------------------------------------------------------

    def page_frame(self, inode: Inode, page_index: int, create: bool = True) -> Optional[int]:
        """The page-cache frame for one file page, paging it in from
        disk (or allocating fresh) as needed."""
        pfn = inode.pages.get(page_index)
        if pfn is not None:
            return pfn
        if not create:
            return None
        pfn = self._alloc.alloc()
        self._cache.readin_page(inode.inode_id, page_index, pfn)
        inode.pages[page_index] = pfn
        return pfn

    def writeback(self, inode: Inode) -> int:
        """Flush all resident pages of a file to disk."""
        count = 0
        for page_index, pfn in sorted(inode.pages.items()):
            self._cache.writeback_page(inode.inode_id, page_index, pfn)
            count += 1
        return count

    def evict(self, inode: Inode) -> int:
        """Write back and drop every resident page (memory pressure)."""
        count = self.writeback(inode)
        for pfn in inode.pages.values():
            self._alloc.free(pfn)
        inode.pages.clear()
        return count

    # -- byte-granular data path ------------------------------------------------

    def read(self, inode: Inode, offset: int, size: int) -> bytes:
        if inode.itype is not InodeType.REGULAR:
            raise ValueError("read from non-regular inode")
        if offset >= inode.size or size <= 0:
            return b""
        size = min(size, inode.size - offset)
        chunks: List[bytes] = []
        cursor = offset
        remaining = size
        while remaining > 0:
            page_index, page_off = divmod(cursor, PAGE_SIZE)
            length = min(PAGE_SIZE - page_off, remaining)
            pfn = self.page_frame(inode, page_index)
            chunks.append(self._phys.read(pfn, page_off, length))
            cursor += length
            remaining -= length
        self._cycles.charge("kernel", self._costs.copy_cost(size))
        return b"".join(chunks)

    def write(self, inode: Inode, offset: int, data: bytes) -> int:
        if inode.itype is not InodeType.REGULAR:
            raise ValueError("write to non-regular inode")
        cursor = offset
        pos = 0
        while pos < len(data):
            page_index, page_off = divmod(cursor, PAGE_SIZE)
            length = min(PAGE_SIZE - page_off, len(data) - pos)
            pfn = self.page_frame(inode, page_index)
            self._phys.write(pfn, page_off, data[pos : pos + length])
            cursor += length
            pos += length
        inode.size = max(inode.size, offset + len(data))
        self._cycles.charge("kernel", self._costs.copy_cost(len(data)))
        return len(data)

    def truncate(self, inode: Inode, new_size: int) -> None:
        if new_size < inode.size:
            first_dead_page = (new_size + PAGE_SIZE - 1) // PAGE_SIZE
            for page_index in [p for p in inode.pages if p >= first_dead_page]:
                self._alloc.free(inode.pages.pop(page_index))
            # Zero the tail of the last kept page so stale bytes never
            # reappear if the file grows again.
            if new_size % PAGE_SIZE and (new_size // PAGE_SIZE) in inode.pages:
                pfn = inode.pages[new_size // PAGE_SIZE]
                tail = new_size % PAGE_SIZE
                self._phys.write(pfn, tail, bytes(PAGE_SIZE - tail))
        inode.size = new_size
