"""Thread syscalls: create/join within a process.

Threads share the address space, fd table, and signal dispositions of
their group leader; each has its own schedulable task, register state,
and — for cloaked processes — its own cloaked thread context in the
VMM (the paper's design keeps one CTC per thread precisely so that
multithreaded applications work unmodified).
"""

from typing import Dict

from repro.guestos import uapi
from repro.guestos.process import Process, ProcessState
from repro.guestos.uapi import Blocked, Syscall


def sys_thread_create(kernel, proc: Process, args, extra):
    """Create a thread of the calling process.

    ``extra`` carries (entry, args) for the runtime layer, like fork.
    Returns the new tid.
    """
    if extra is None:
        return -uapi.EINVAL
    entry, thread_args = extra

    tid = kernel._next_pid
    kernel._next_pid += 1
    thread_runtime = proc.runtime.make_thread(entry, thread_args)
    thread = Process(tid, proc.pid, f"{proc.name}", proc.aspace,
                     thread_runtime, cloaked=proc.cloaked, tgid=proc.tgid)
    thread.spawned_at = kernel.cycles.total
    # Shared, not copied: the very definition of a thread.
    thread.fds = proc.fds
    thread.signal_handlers = proc.signal_handlers
    thread.cwd = proc.cwd
    thread_runtime.start_child(tid)

    # Architectural event: the VMM observes the new thread and binds
    # it to the creator's protection domain (same domain — this is a
    # thread, not a fork).
    kernel.arch.notify_thread_spawn(proc.pid, tid)

    kernel.processes[tid] = thread
    proc.children.append(tid)
    kernel.scheduler.enqueue(thread)
    kernel.stats.bump("kernel.threads_created")
    return tid


def sys_thread_join(kernel, proc: Process, args, extra):
    """Wait for one thread of this group; returns (tid, exit code)."""
    (tid,) = args
    target = kernel.processes.get(tid)
    if target is None or target.tgid != proc.tgid or tid not in proc.children:
        return -uapi.ESRCH
    if target.state is ProcessState.ZOMBIE:
        return kernel.reap(target)
    return Blocked(kernel.child_channel(proc.pid))


def handlers() -> Dict[Syscall, callable]:
    return {
        Syscall.THREAD_CREATE: sys_thread_create,
        Syscall.THREAD_JOIN: sys_thread_join,
    }
