"""VFS layer: path resolution and directory operations over RamFS."""

from typing import List, Optional, Tuple

from repro.guestos import uapi
from repro.guestos.pipes import Pipe
from repro.guestos.ramfs import Inode, InodeType, RamFS


class VFSError(Exception):
    """Carries an errno for the syscall layer."""

    def __init__(self, errno: int, message: str = ""):
        super().__init__(message or uapi.errno_name(errno))
        self.errno = errno


def split_path(path: str) -> List[str]:
    return [part for part in path.split("/") if part]


class VFS:
    """Pathnames -> inodes, plus directory surgery."""

    def __init__(self, fs: RamFS):
        self.fs = fs
        self._make_devices()

    def _make_devices(self) -> None:
        dev = self.fs.new_inode(InodeType.DIRECTORY)
        self.fs.root.entries["dev"] = dev.inode_id
        for name in ("console", "null"):
            node = self.fs.new_inode(InodeType.DEVICE)
            node.device = name
            dev.entries[name] = node.inode_id

    # -- resolution ---------------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Full path -> inode; raises VFSError(ENOENT/ENOTDIR)."""
        inode = self.fs.root
        for part in split_path(path):
            if inode.itype is not InodeType.DIRECTORY:
                raise VFSError(uapi.ENOTDIR, path)
            child_id = inode.entries.get(part)
            if child_id is None:
                raise VFSError(uapi.ENOENT, path)
            inode = self.fs.get(child_id)
        return inode

    def resolve_parent(self, path: str) -> Tuple[Inode, str]:
        """Parent directory of ``path`` and the final component."""
        parts = split_path(path)
        if not parts:
            raise VFSError(uapi.EINVAL, "empty path")
        parent = self.fs.root
        for part in parts[:-1]:
            if parent.itype is not InodeType.DIRECTORY:
                raise VFSError(uapi.ENOTDIR, path)
            child_id = parent.entries.get(part)
            if child_id is None:
                raise VFSError(uapi.ENOENT, path)
            parent = self.fs.get(child_id)
        if parent.itype is not InodeType.DIRECTORY:
            raise VFSError(uapi.ENOTDIR, path)
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except VFSError:
            return False

    # -- creation / removal --------------------------------------------------------

    def create_file(self, path: str) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise VFSError(uapi.EEXIST, path)
        inode = self.fs.new_inode(InodeType.REGULAR)
        parent.entries[name] = inode.inode_id
        return inode

    def mkdir(self, path: str) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise VFSError(uapi.EEXIST, path)
        inode = self.fs.new_inode(InodeType.DIRECTORY)
        parent.entries[name] = inode.inode_id
        return inode

    def mkfifo(self, path: str) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise VFSError(uapi.EEXIST, path)
        inode = self.fs.new_inode(InodeType.FIFO)
        inode.pipe = Pipe()
        parent.entries[name] = inode.inode_id
        return inode

    def unlink(self, path: str) -> None:
        parent, name = self.resolve_parent(path)
        child_id = parent.entries.get(name)
        if child_id is None:
            raise VFSError(uapi.ENOENT, path)
        child = self.fs.get(child_id)
        if child.itype is InodeType.DIRECTORY:
            if child.entries:
                raise VFSError(uapi.ENOTEMPTY, path)
        del parent.entries[name]
        child.nlink -= 1
        if child.nlink <= 0:
            self.fs.drop_inode(child)

    def rename(self, old_path: str, new_path: str) -> None:
        """Move a directory entry; replaces an existing regular target
        (POSIX semantics, minus cross-checks we do not model)."""
        old_parent, old_name = self.resolve_parent(old_path)
        child_id = old_parent.entries.get(old_name)
        if child_id is None:
            raise VFSError(uapi.ENOENT, old_path)
        new_parent, new_name = self.resolve_parent(new_path)
        existing_id = new_parent.entries.get(new_name)
        if existing_id is not None:
            if existing_id == child_id:
                return
            existing = self.fs.get(existing_id)
            if existing.itype is InodeType.DIRECTORY:
                raise VFSError(uapi.EISDIR, new_path)
            existing.nlink -= 1
            if existing.nlink <= 0:
                self.fs.drop_inode(existing)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = child_id

    def readdir(self, path: str) -> List[str]:
        inode = self.resolve(path)
        if inode.itype is not InodeType.DIRECTORY:
            raise VFSError(uapi.ENOTDIR, path)
        return sorted(inode.entries)

    # -- stat ---------------------------------------------------------------------

    STAT_TYPES = {
        InodeType.REGULAR: uapi.S_IFREG,
        InodeType.DIRECTORY: uapi.S_IFDIR,
        InodeType.FIFO: uapi.S_IFIFO,
        InodeType.DEVICE: uapi.S_IFCHR,
    }

    def stat(self, inode: Inode) -> Tuple[int, int, int]:
        """(type, size, inode_id) — the subset our stat(2) reports."""
        return self.STAT_TYPES[inode.itype], inode.size, inode.inode_id
