"""Preemptive round-robin scheduler."""

from collections import deque
from typing import Deque, Optional

from repro.guestos.process import Process, ProcessState
from repro.obs import bus


class Scheduler:
    """Round-robin over READY processes with fixed timeslices.

    The machine loop asks :meth:`pick` for the next process to run and
    calls :meth:`requeue` when a timeslice expires; blocking and waking
    move processes off and onto the ready queue.
    """

    def __init__(self) -> None:
        self._ready: Deque[Process] = deque()
        self.context_switches = 0

    def __len__(self) -> int:
        return len(self._ready)

    def enqueue(self, proc: Process) -> None:
        if proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            return
        proc.state = ProcessState.READY
        if proc not in self._ready:
            self._ready.append(proc)

    def pick(self) -> Optional[Process]:
        while self._ready:
            proc = self._ready.popleft()
            if proc.state is ProcessState.READY:
                proc.state = ProcessState.RUNNING
                self.context_switches += 1
                if bus.ACTIVE:
                    bus.sched_slice(proc.pid)
                return proc
        return None

    def requeue(self, proc: Process) -> None:
        """Timeslice expired: back of the line."""
        self.enqueue(proc)

    def block(self, proc: Process) -> None:
        proc.state = ProcessState.BLOCKED
        try:
            self._ready.remove(proc)
        except ValueError:
            pass

    def wake(self, proc: Process) -> None:
        if proc.state is ProcessState.BLOCKED:
            self.enqueue(proc)

    def has_work(self) -> bool:
        return bool(self._ready)
