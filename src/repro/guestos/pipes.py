"""Pipes: bounded in-kernel byte channels with blocking semantics."""

from typing import Optional

from repro.guestos.uapi import WaitChannel

#: Default pipe capacity, bytes (Linux uses 64 KiB; we keep it smaller
#: so benchmarks actually exercise the blocking paths).
PIPE_CAPACITY = 16 * 1024


class Pipe:
    """One pipe: a ring of bytes plus reader/writer bookkeeping.

    The syscall layer interprets the sentinel returns: ``None`` from
    :meth:`read`/:meth:`write` means "would block" (park on the
    corresponding channel and restart).
    """

    _next_id = 0

    def __init__(self, capacity: int = PIPE_CAPACITY):
        Pipe._next_id += 1
        self.pipe_id = Pipe._next_id
        self._buffer = bytearray()
        self.capacity = capacity
        self.readers = 0
        self.writers = 0
        #: EOF is only meaningful once a writer has existed; a FIFO
        #: reader that arrives first must wait, not see end-of-file.
        self.ever_had_writer = False
        self.read_channel = WaitChannel(f"pipe{self.pipe_id}.read")
        self.write_channel = WaitChannel(f"pipe{self.pipe_id}.write")
        #: FIFO open(O_WRONLY) parks here until a reader exists.
        self.open_channel = WaitChannel(f"pipe{self.pipe_id}.open")
        self.bytes_transferred = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def space(self) -> int:
        return self.capacity - len(self._buffer)

    def read(self, size: int) -> Optional[bytes]:
        """Take up to ``size`` bytes.

        Returns data, or ``b""`` for EOF (no writers, drained), or
        ``None`` when the caller must block.
        """
        if size <= 0:
            return b""
        if not self._buffer:
            if self.writers == 0 and self.ever_had_writer:
                return b""
            return None
        data = bytes(self._buffer[:size])
        del self._buffer[:size]
        return data

    def write(self, data: bytes) -> Optional[int]:
        """Append as much of ``data`` as fits.

        Returns the byte count written (possibly short), ``None`` when
        full (block), or raises :class:`BrokenPipeError` when no reader
        remains (the syscall layer turns that into EPIPE + SIGPIPE).
        """
        if self.readers == 0:
            raise BrokenPipeError
        if not data:
            return 0
        if self.space == 0:
            return None
        chunk = data[: self.space]
        self._buffer.extend(chunk)
        self.bytes_transferred += len(chunk)
        return len(chunk)

    # -- endpoint lifecycle -----------------------------------------------------

    def add_reader(self) -> None:
        self.readers += 1

    def add_writer(self) -> None:
        self.writers += 1
        self.ever_had_writer = True

    def drop_reader(self) -> None:
        if self.readers <= 0:
            raise ValueError("reader underflow")
        self.readers -= 1
        self._maybe_quiesce()

    def drop_writer(self) -> None:
        if self.writers <= 0:
            raise ValueError("writer underflow")
        self.writers -= 1
        self._maybe_quiesce()

    def _maybe_quiesce(self) -> None:
        """All endpoints closed: a FIFO resets for its next session
        (unread data is discarded and EOF state clears, per POSIX)."""
        if self.readers == 0 and self.writers == 0:
            self._buffer.clear()
            self.ever_had_writer = False

    def __repr__(self) -> str:
        return (f"Pipe(#{self.pipe_id}, {len(self._buffer)}/{self.capacity}B, "
                f"r={self.readers}, w={self.writers})")
