"""A victim application for the security evaluation (R-T4).

It places a recognisable secret in memory and in registers, announces
readiness, then keeps re-reading and verifying the secret across many
kernel entries — giving a malicious OS every opportunity to peek,
tamper, or replay, and the VMM every opportunity to catch it.
"""

from repro.apps.program import Program, UserContext

#: The secret the attack suite greps for.
SECRET = b"CLASSIFIED-PAYROLL-DB-KEY-0xC0FFEE"

#: Register the victim parks a secret value in.
SECRET_REG = "r7"
SECRET_REG_VALUE = 0x5EC2E7C0FFEE


class SecretHolder(Program):
    """Writes SECRET, prints "ready", then verify-loops.

    argv: (rounds,)
    """

    name = "secretholder"

    def __init__(self):
        self.secret_vaddr = None

    DECOY = b"second-page-decoy-record"

    def main(self, ctx: UserContext):
        rounds = int(ctx.argv[0]) if ctx.argv else 20
        # Two full data pages: the secret page and a decoy sibling
        # (gives remapping attacks something to swap with).
        base = ctx.scratch(2 * 4096)
        self.secret_vaddr = base
        decoy_vaddr = base + 4096
        yield ctx.store(self.secret_vaddr, SECRET)
        yield ctx.store(decoy_vaddr, self.DECOY)
        yield ctx.set_reg(SECRET_REG, SECRET_REG_VALUE)
        yield from ctx.print("ready\n")

        for round_no in range(rounds):
            # Each yield gives the scheduler (and an attacker) a window.
            yield ctx.sched_yield()
            data = yield ctx.load(self.secret_vaddr, len(SECRET))
            decoy = yield ctx.load(decoy_vaddr, len(self.DECOY))
            if data != SECRET or decoy != self.DECOY:
                yield from ctx.print(f"CORRUPTED at round {round_no}\n")
                return 2
            reg = yield ctx.get_reg(SECRET_REG)
            if reg != SECRET_REG_VALUE:
                yield from ctx.print(f"REGS CLOBBERED at round {round_no}\n")
                return 3
        yield from ctx.print("intact\n")
        return 0


class SecretFileWriter(Program):
    """Writes a secret record to a file, then verify-loops on it.

    argv: (path, rounds) — a ``/secure`` path exercises cloaked-file
    emulation; any other path is the unprotected baseline channel.
    """

    name = "secretfilewriter"

    RECORD = b"SECRET-LEDGER-ROW"

    def main(self, ctx: UserContext):
        from repro.guestos import uapi

        path = ctx.argv[0] if ctx.argv else "/secure/ledger.dat"
        rounds = int(ctx.argv[1]) if len(ctx.argv) > 1 else 10

        fd = yield from ctx.open_path(path, uapi.O_CREAT | uapi.O_RDWR)
        if fd < 0:
            yield from ctx.print(f"open failed {fd}\n")
            return 1
        payload = self.RECORD * 8
        yield from ctx.write_bytes(fd, payload)
        yield ctx.sync()
        yield from ctx.print("ready\n")

        for round_no in range(rounds):
            yield ctx.sched_yield()
            yield ctx.lseek(fd, 0, uapi.SEEK_SET)
            data = yield from ctx.read_bytes(fd, len(payload))
            if data != payload:
                yield from ctx.print(f"FILE CORRUPTED at round {round_no}\n")
                return 2
        yield ctx.close(fd)
        yield from ctx.print("intact\n")
        return 0


class SecretWriter(Program):
    """Writes an evolving secret (versions) so replay attacks have an
    old version to roll back to.

    argv: (rounds,)
    """

    name = "secretwriter"

    def __init__(self):
        self.secret_vaddr = None

    def main(self, ctx: UserContext):
        rounds = int(ctx.argv[0]) if ctx.argv else 6
        self.secret_vaddr = ctx.scratch(64)
        for version in range(rounds):
            payload = b"VERSION-%04d:" % version + SECRET[:32]
            yield ctx.store(self.secret_vaddr, payload)
            if version == 0:
                yield from ctx.print("ready\n")
            yield from ctx.print(f"v{version}\n")
            yield ctx.sched_yield()
            data = yield ctx.load(self.secret_vaddr, len(payload))
            if data != payload:
                yield from ctx.print("ROLLBACK OBSERVED\n")
                return 2
        yield from ctx.print("intact\n")
        return 0
