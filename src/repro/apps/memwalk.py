"""Working-set walker: the memory-pressure workload (R-F5).

Touches a working set of N pages repeatedly with compute in between,
so a reclaiming kernel keeps stealing pages the application is about
to need again.  Natively each steal costs a swap-out + a refault +
swap-in; cloaked it additionally costs an encrypt on the way out and a
verify+decrypt on the way back — the experiment sweeps reclaim
pressure to expose that multiplier.
"""

from repro.apps.program import Program, UserContext
from repro.hw.params import PAGE_SIZE


class WorkingSetWalker(Program):
    """argv: (pages, rounds, alu_per_touch)"""

    name = "memwalk"

    def main(self, ctx: UserContext):
        pages = int(ctx.argv[0]) if len(ctx.argv) > 0 else 16
        rounds = int(ctx.argv[1]) if len(ctx.argv) > 1 else 8
        alu_per_touch = int(ctx.argv[2]) if len(ctx.argv) > 2 else 2000

        base = ctx.scratch(pages * PAGE_SIZE)
        # Materialise the working set with a recognisable per-page tag.
        for page in range(pages):
            yield ctx.store(base + page * PAGE_SIZE, b"P%06d" % page)

        corrupted = 0
        for __ in range(rounds):
            for page in range(pages):
                data = yield ctx.load(base + page * PAGE_SIZE, 7)
                if data != b"P%06d" % page:
                    corrupted += 1
                yield ctx.alu(alu_per_touch)
        if corrupted:
            yield from ctx.print(f"CORRUPTED {corrupted}\n")
            return 1
        yield from ctx.print(f"walked {pages}p x {rounds}r\n")
        return 0
