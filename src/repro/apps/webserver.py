"""A static-file web server and closed-loop clients (R-F3).

The transport is FIFOs (the guest has no network stack; the paper's
claim is about syscall/memory overhead, not TCP): clients write
fixed-size request records into a shared request FIFO and read
responses from per-client FIFOs.  The server is the protected party —
run it cloaked and every page of file cache it touches through
``/secure`` stays ciphertext to the OS while clients still get
plaintext responses (explicit declassification on the response path,
like serving TLS from an enclave).

Request record (64 bytes): ``cid:4 | path_len:2 | path | zero pad``.
Response: ``status:4 | length:4`` header, then the body.
"""

import hashlib
import struct

from repro.apps.program import Program, UserContext
from repro.guestos import uapi

REQUEST_SIZE = 64
RESPONSE_HEADER = struct.Struct("<II")

REQUEST_FIFO = "/srv/req"

#: Connection-id sentinel: a request record carrying this cid asks the
#: server to shut down.  Open-loop load generators (repro.serve) run
#: the server with ``total <= 0`` ("serve until told to stop") and
#: send this after the last scheduled arrival, so the request count
#: does not have to be known when the server starts.
SHUTDOWN_CID = 0xFFFFFFFF


def response_fifo(cid: int) -> str:
    return f"/srv/rsp{cid}"


def pack_request(cid: int, path: str) -> bytes:
    encoded = path.encode()
    if len(encoded) > REQUEST_SIZE - 6:
        raise ValueError("path too long for request record")
    record = struct.pack("<IH", cid, len(encoded)) + encoded
    return record.ljust(REQUEST_SIZE, b"\x00")


def pack_shutdown() -> bytes:
    """The shutdown-sentinel request record (see :data:`SHUTDOWN_CID`)."""
    return pack_request(SHUTDOWN_CID, "")


def unpack_request(record: bytes):
    cid, path_len = struct.unpack_from("<IH", record)
    path = record[6 : 6 + path_len].decode()
    return cid, path


class WebServer(Program):
    """Serves ``total_requests`` then exits.

    argv: (total_requests,).  A non-positive total means "serve until
    a shutdown-sentinel request arrives" (:data:`SHUTDOWN_CID`) — the
    connection-multiplexing mode the open-loop load generator uses,
    where the number of requests is decided by the arrival schedule,
    not the server.
    """

    name = "webserver"

    def _read_exact(self, ctx, fd, buf, nbytes):
        got = 0
        while got < nbytes:
            count = yield ctx.read(fd, buf + got, nbytes - got)
            if not isinstance(count, int) or count <= 0:
                return got
            got += count
        return got

    def main(self, ctx: UserContext):
        total = int(ctx.argv[0]) if ctx.argv else 8
        run_until_shutdown = total <= 0
        req_fd = yield from ctx.open_path(REQUEST_FIFO, uapi.O_RDONLY)
        if req_fd < 0:
            yield from ctx.print(f"server: no request fifo ({req_fd})\n")
            return 1

        record_buf = ctx.scratch(REQUEST_SIZE)
        body_buf = ctx.scratch(64 * 1024)
        header_buf = ctx.scratch(RESPONSE_HEADER.size)
        served = 0
        response_fds = {}

        spins = 0
        while run_until_shutdown or served < total:
            got = yield from self._read_exact(ctx, req_fd, record_buf,
                                              REQUEST_SIZE)
            if got < REQUEST_SIZE:
                # EOF: either the clients have not connected yet (FIFO
                # opens are non-blocking in this kernel) or they all
                # hung up.  Spin politely for the former.
                spins += 1
                if served > 0 or spins > 300:
                    break
                yield ctx.sched_yield()
                continue
            record = yield ctx.load(record_buf, REQUEST_SIZE)
            cid, path = unpack_request(record)
            if cid == SHUTDOWN_CID:
                break

            rsp_fd = response_fds.get(cid)
            if rsp_fd is None:
                rsp_fd = yield from ctx.open_path(response_fifo(cid),
                                                  uapi.O_WRONLY)
                response_fds[cid] = rsp_fd

            # Fetch the file (through the shim's emulation when the
            # path is protected).
            fd = yield from ctx.open_path(path, uapi.O_RDONLY)
            if fd < 0:
                yield ctx.store(header_buf, RESPONSE_HEADER.pack(404, 0))
                yield ctx.write(rsp_fd, header_buf, RESPONSE_HEADER.size)
                served += 1
                continue
            length = 0
            while True:
                count = yield ctx.read(fd, body_buf + length,
                                       16 * 1024)
                if not isinstance(count, int) or count <= 0:
                    break
                length += count
            yield ctx.close(fd)

            yield ctx.store(header_buf, RESPONSE_HEADER.pack(200, length))
            yield ctx.write(rsp_fd, header_buf, RESPONSE_HEADER.size)
            offset = 0
            while offset < length:
                chunk = min(8 * 1024, length - offset)
                count = yield ctx.write(rsp_fd, body_buf + offset, chunk)
                if not isinstance(count, int) or count <= 0:
                    break
                offset += count
            served += 1

        for rsp_fd in response_fds.values():
            yield ctx.close(rsp_fd)
        yield ctx.close(req_fd)
        yield from ctx.print(f"served {served}\n")
        return 0


class WebClient(Program):
    """Closed-loop client: request, await response, repeat.

    argv: (cid, requests, path)
    """

    name = "webclient"

    def _read_exact(self, ctx, fd, buf, nbytes):
        got = 0
        while got < nbytes:
            count = yield ctx.read(fd, buf + got, nbytes - got)
            if not isinstance(count, int) or count <= 0:
                return got
            got += count
        return got

    def main(self, ctx: UserContext):
        cid = int(ctx.argv[0])
        requests = int(ctx.argv[1])
        path = ctx.argv[2]

        req_fd = yield from ctx.open_path(REQUEST_FIFO, uapi.O_WRONLY)
        rsp_fd = yield from ctx.open_path(response_fifo(cid), uapi.O_RDONLY)
        if req_fd < 0 or rsp_fd < 0:
            yield from ctx.print(f"client{cid}: connect failed\n")
            return 1

        record_buf = ctx.scratch(REQUEST_SIZE)
        yield ctx.store(record_buf, pack_request(cid, path))
        header_buf = ctx.scratch(RESPONSE_HEADER.size)
        body_buf = ctx.scratch(64 * 1024)

        digest = hashlib.sha256()
        completed = 0
        for __ in range(requests):
            yield ctx.write(req_fd, record_buf, REQUEST_SIZE)
            got = yield from self._read_exact(ctx, rsp_fd, header_buf,
                                              RESPONSE_HEADER.size)
            if got < RESPONSE_HEADER.size:
                break
            header = yield ctx.load(header_buf, RESPONSE_HEADER.size)
            status, length = RESPONSE_HEADER.unpack(header)
            if status != 200:
                break
            got = yield from self._read_exact(ctx, rsp_fd, body_buf, length)
            if got < length:
                break
            body = yield ctx.load(body_buf, length)
            digest.update(body)
            completed += 1

        yield ctx.close(req_fd)
        yield ctx.close(rsp_fd)
        yield from ctx.print(
            f"client{cid} ok {completed} {digest.hexdigest()[:12]}\n"
        )
        return 0
