"""A protected key-value store: the paper's motivating workload.

The intro's scenario — a commodity OS "entrusted with securing
sensitive data" it should never be able to read — as a runnable
application:

* the **server** runs cloaked, keeps its table in cloaked memory, and
  persists a log to a protected file (``/secure``), so the page cache
  and disk hold ciphertext;
* **clients** (forked same-identity workers, e.g. connection handlers)
  talk to it over a sealed channel, so requests and responses cross
  the kernel as sealed records;
* on restart the server **recovers** its table by replaying the
  protected log — data at rest survives process death without ever
  being kernel-readable.

Wire protocol (inside the sealed channel): length-prefixed text
commands ``PUT k v`` / ``GET k`` / ``DEL k`` / ``QUIT``; responses
``OK``, ``VAL <v>``, ``NIL``.
"""

import struct
from typing import Dict, List, Optional

from repro.apps.program import Program, UserContext
from repro.guestos import uapi

LEN = struct.Struct("<H")

REQ_FIFO = "/secure/kv.req"
RSP_FIFO = "/secure/kv.rsp"
LOG_PATH = "/secure/kv.log"


def _frame(message: bytes) -> bytes:
    return LEN.pack(len(message)) + message


class _Wire:
    """Length-prefixed messages over an fd (generator helpers)."""

    @staticmethod
    def send(ctx, fd, buf, message: bytes):
        data = _frame(message)
        yield ctx.store(buf, data)
        sent = 0
        while sent < len(data):
            count = yield ctx.write(fd, buf + sent, len(data) - sent)
            if not isinstance(count, int) or count <= 0:
                return False
            sent += count
        return True

    @staticmethod
    def recv(ctx, fd, buf):
        got = 0
        while got < LEN.size:
            count = yield ctx.read(fd, buf + got, LEN.size - got)
            if not isinstance(count, int) or count <= 0:
                return None
            got += count
        header = yield ctx.load(buf, LEN.size)
        (length,) = LEN.unpack(header)
        got = 0
        while got < length:
            count = yield ctx.read(fd, buf + LEN.size + got, length - got)
            if not isinstance(count, int) or count <= 0:
                return None
            got += count
        body = yield ctx.load(buf + LEN.size, length)
        return body


#: Public name for the framed-message helpers: the open-loop load
#: generator (repro.serve.loadgen) speaks the same wire protocol to
#: multiplex many logical connections over the request FIFO.
Wire = _Wire


class KVStore(Program):
    """The server+client pair in one identity.

    argv: ("serve", requests) — run a server for N requests, or
    argv: ("batch", commands...) — fork a server, run the given
    commands as a client, then QUIT.  Commands are semicolon-joined,
    e.g. "PUT a 1;GET a;DEL a;GET a".
    """

    name = "kvstore"

    # ------------------------------------------------------------------
    # server
    # ------------------------------------------------------------------

    def _recover(self, ctx: UserContext, table: Dict[bytes, bytes]):
        """Replay the protected log into the in-memory table."""
        fd = yield from ctx.open_path(LOG_PATH, uapi.O_RDONLY)
        if not isinstance(fd, int) or fd < 0:
            return 0
        buf = ctx.scratch(8 * 1024)
        raw = b""
        while True:
            count = yield ctx.read(fd, buf, 4096)
            if not isinstance(count, int) or count <= 0:
                break
            raw += (yield ctx.load(buf, count))
        yield ctx.close(fd)
        replayed = 0
        for line in raw.splitlines():
            parts = line.split(b" ", 2)
            if parts[0] == b"PUT" and len(parts) == 3:
                table[parts[1]] = parts[2]
            elif parts[0] == b"DEL" and len(parts) >= 2:
                table.pop(parts[1], None)
            replayed += 1
        return replayed

    def _append_log(self, ctx, log_fd, buf, line: bytes):
        yield ctx.store(buf, line + b"\n")
        yield ctx.write(log_fd, buf, len(line) + 1)

    def server(self, ctx: UserContext, max_requests: int):
        """Serve ``max_requests`` then stop.  A non-positive count
        means "serve until QUIT" — the open-loop load generator's
        mode, where the arrival schedule decides how many requests
        each shard receives (re-routed traffic included)."""
        table: Dict[bytes, bytes] = {}
        replayed = yield from self._recover(ctx, table)
        run_until_quit = max_requests <= 0

        log_fd = yield from ctx.open_path(
            LOG_PATH, uapi.O_CREAT | uapi.O_WRONLY | uapi.O_APPEND
        )
        req_fd = yield from ctx.open_path(REQ_FIFO, uapi.O_RDONLY)
        rsp_fd = yield from ctx.open_path(RSP_FIFO, uapi.O_WRONLY)
        wire_buf = ctx.scratch(4 * 1024)
        log_buf = ctx.scratch(1024)

        served = 0
        while run_until_quit or served < max_requests:
            request = yield from _Wire.recv(ctx, req_fd, wire_buf)
            if request is None:
                break
            served += 1
            parts = request.split(b" ", 2)
            verb = parts[0]
            if verb == b"PUT" and len(parts) == 3:
                table[parts[1]] = parts[2]
                yield from self._append_log(ctx, log_fd, log_buf, request)
                reply = b"OK"
            elif verb == b"GET" and len(parts) >= 2:
                value = table.get(parts[1])
                reply = b"VAL " + value if value is not None else b"NIL"
            elif verb == b"DEL" and len(parts) >= 2:
                existed = parts[1] in table
                table.pop(parts[1], None)
                yield from self._append_log(ctx, log_fd, log_buf, request)
                reply = b"OK" if existed else b"NIL"
            elif verb == b"QUIT":
                yield from _Wire.send(ctx, rsp_fd, wire_buf, b"BYE")
                break
            else:
                reply = b"ERR"
            ok = yield from _Wire.send(ctx, rsp_fd, wire_buf, reply)
            if not ok:
                break

        yield ctx.close(req_fd)
        yield ctx.close(rsp_fd)
        yield ctx.close(log_fd)
        yield from ctx.print(
            f"server: replayed {replayed}, served {served}, "
            f"keys {len(table)}\n"
        )
        return 0

    # ------------------------------------------------------------------
    # client
    # ------------------------------------------------------------------

    def client(self, ctx: UserContext, commands: List[bytes]):
        req_fd = yield from ctx.open_path(REQ_FIFO, uapi.O_WRONLY)
        rsp_fd = yield from ctx.open_path(RSP_FIFO, uapi.O_RDONLY)
        wire_buf = ctx.scratch(4 * 1024)
        replies = []
        for command in commands + [b"QUIT"]:
            ok = yield from _Wire.send(ctx, req_fd, wire_buf, command)
            if not ok:
                break
            reply = yield from _Wire.recv(ctx, rsp_fd, wire_buf)
            if reply is None:
                break
            replies.append(reply)
        yield ctx.close(req_fd)
        yield ctx.close(rsp_fd)
        yield from ctx.print(
            "client: " + b" | ".join(replies).decode(errors="replace") + "\n"
        )
        return 0

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------

    def _server_entry(self, ctx: UserContext, max_requests: int):
        code = yield from self.server(ctx, max_requests)
        return code

    def main(self, ctx: UserContext):
        mode = ctx.argv[0] if ctx.argv else "batch"
        path_vaddr, path_len = yield from ctx.put_string(REQ_FIFO)
        rsp_vaddr, rsp_len = yield from ctx.put_string(RSP_FIFO)
        for vaddr, length in ((path_vaddr, path_len), (rsp_vaddr, rsp_len)):
            result = yield ctx.mkfifo(vaddr, length)
            if result not in (0, -uapi.EEXIST):
                yield from ctx.print(f"mkfifo failed {result}\n")
                return 1

        if mode == "serve":
            max_requests = int(ctx.argv[1]) if len(ctx.argv) > 1 else 16
            code = yield from self.server(ctx, max_requests)
            return code

        # batch: fork the server, run the commands as client, join.
        script = ctx.argv[1] if len(ctx.argv) > 1 else "PUT a 1;GET a"
        commands = [c.strip().encode() for c in script.split(";") if c.strip()]
        server_pid = yield ctx.fork(self._server_entry, len(commands) + 1)
        code = yield from self.client(ctx, commands)
        yield ctx.waitpid(server_pid)
        return code
