"""FIFO pump: the sealed-IPC throughput workload (R-F6).

A parent streams a payload to its forked child through a FIFO in
fixed-size messages; the child checksums what it receives.  Pointing
the FIFO under ``/secure`` turns every message into a sealed record
(cloaked runs only), so the sweep isolates the sealing cost.
"""

import hashlib

from repro.apps.program import Program, UserContext
from repro.guestos import uapi


class ChannelPump(Program):
    """argv: (fifo_path, message_size, total_bytes)"""

    name = "chanpump"

    def _payload(self, total: int) -> bytes:
        return (hashlib.sha256(b"chanpump").digest() * (total // 32 + 1))[:total]

    def child(self, ctx: UserContext, path_vaddr, path_len, message_size,
              total):
        fd = yield ctx.open(path_vaddr, path_len, uapi.O_RDONLY)
        buf = ctx.scratch(message_size)
        digest = hashlib.sha256()
        received = 0
        while received < total:
            count = yield ctx.read(fd, buf, message_size)
            if not isinstance(count, int) or count <= 0:
                break
            data = yield ctx.load(buf, count)
            digest.update(data)
            received += count
        yield ctx.close(fd)
        yield from ctx.print(
            f"recv {received} {digest.hexdigest()[:12]}\n"
        )
        expected = hashlib.sha256(self._payload(total)).hexdigest()[:12]
        return 0 if digest.hexdigest()[:12] == expected and received == total \
            else 1

    def main(self, ctx: UserContext):
        path = ctx.argv[0]
        message_size = int(ctx.argv[1])
        total = int(ctx.argv[2])

        path_vaddr, path_len = yield from ctx.put_string(path)
        yield ctx.mkfifo(path_vaddr, path_len)
        pid = yield ctx.fork(self.child, path_vaddr, path_len, message_size,
                             total)

        fd = yield ctx.open(path_vaddr, path_len, uapi.O_WRONLY)
        payload = self._payload(total)
        buf = ctx.scratch(message_size)
        sent = 0
        while sent < total:
            chunk = payload[sent : sent + message_size]
            yield ctx.store(buf, chunk)
            written = yield ctx.write(fd, buf, len(chunk))
            if not isinstance(written, int) or written <= 0:
                break
            sent += written
        yield ctx.close(fd)
        result = yield ctx.waitpid(pid)
        yield from ctx.print(f"pumped {sent} child={result[1]}\n")
        return result[1]
