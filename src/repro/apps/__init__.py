"""Guest applications: the program model plus the workload programs
used by the examples, tests, and benchmarks."""

from repro.apps.program import BaseRuntime, NativeRuntime, Program, UserContext
from repro.apps.registry import ALL_PROGRAMS, make_secure_dirs, register_all

__all__ = [
    "ALL_PROGRAMS",
    "BaseRuntime",
    "NativeRuntime",
    "Program",
    "UserContext",
    "make_secure_dirs",
    "register_all",
]
