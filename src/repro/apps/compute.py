"""SPEC-like compute kernels (the R-F1 workload suite).

Each kernel does real work against simulated memory — inputs are
stored through the MMU, loaded back, transformed, and a checksum is
printed — so a cloaked run must produce byte-identical output to a
native run (transparency), while the virtual-cycle ledger captures the
overhead.  Sizes are chosen so each kernel runs a few million virtual
cycles, long enough to cross many timeslices.

The mix mirrors a SPECint-style suite: dense arithmetic (``matmul``,
``stencil``), sorting (``qsortk``), compression (``rle``), hashing
(``shaloop``), pointer chasing over a graph (``bfsgraph``), and byte
bashing (``histogram``, ``strsearch``).
"""

import hashlib
import random
from typing import List

from repro.apps.program import Program, UserContext

#: Memory is touched in lines of this many bytes: coarse enough to
#: keep the simulation fast, fine enough to exercise paging.
CHUNK = 512


def _prng(seed: str) -> random.Random:
    """Deterministic, explicitly seeded PRNG.

    All randomness in the workload suite must flow through here: the
    module-level ``random`` functions are banned (DET001) because their
    shared global state makes input bytes depend on execution order.
    """
    return random.Random(int.from_bytes(hashlib.sha256(seed.encode()).digest()[:8],
                                        "little"))


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


class ComputeKernel(Program):
    """Base: init input in memory -> transform -> store -> checksum."""

    #: Nominal problem scale; subclasses interpret it.
    default_size = 64

    def __init__(self, size: int = 0):
        self.size = size or self.default_size

    def rng(self) -> random.Random:
        """This kernel's input PRNG, seeded from (name, size) as
        DESIGN.md specifies — every kernel's inputs are a pure function
        of its identity."""
        return _prng(f"{self.name}-{self.size}")

    def generate_input(self) -> bytes:
        raise NotImplementedError

    def transform(self, data: bytes) -> (bytes, int):
        """Pure computation: returns (output, alu_units_charged)."""
        raise NotImplementedError

    def main(self, ctx: UserContext):
        payload = self.generate_input()
        src = ctx.scratch(len(payload))
        dst = ctx.scratch(len(payload) * 2)

        # Materialise the input through the MMU, chunk by chunk.
        for offset in range(0, len(payload), CHUNK):
            yield ctx.store(src + offset, payload[offset : offset + CHUNK])

        # Load, compute, store: the transform's cost lands on the ALU;
        # its traffic lands on the memory system.
        loaded: List[bytes] = []
        for offset in range(0, len(payload), CHUNK):
            loaded.append((yield ctx.load(src + offset,
                                          min(CHUNK, len(payload) - offset))))
        data = b"".join(loaded)
        output, alu_units = self.transform(data)
        yield ctx.alu(alu_units)
        for offset in range(0, len(output), CHUNK):
            yield ctx.store(dst + offset, output[offset : offset + CHUNK])

        # Read the result back and attest it.
        reread: List[bytes] = []
        for offset in range(0, len(output), CHUNK):
            reread.append((yield ctx.load(dst + offset,
                                          min(CHUNK, len(output) - offset))))
        yield from ctx.print(f"{self.name}: {_checksum(b''.join(reread))}\n")
        return 0


class MatMul(ComputeKernel):
    """Dense integer matrix multiply (blocked arithmetic)."""

    name = "matmul"
    default_size = 56  # k x k matrices

    def generate_input(self) -> bytes:
        rng = self.rng()
        cells = 2 * self.size * self.size
        return bytes(rng.randrange(256) for __ in range(cells))

    def transform(self, data: bytes):
        k = self.size
        a = [list(data[i * k : (i + 1) * k]) for i in range(k)]
        b = [list(data[(k + i) * k : (k + i + 1) * k]) for i in range(k)]
        out = bytearray()
        for i in range(k):
            for j in range(k):
                acc = 0
                row = a[i]
                for t in range(k):
                    acc += row[t] * b[t][j]
                out.append(acc & 0xFF)
        return bytes(out), 2 * k * k * k  # one mul + one add per step


class QSortK(ComputeKernel):
    """Sort a large array (comparison-heavy)."""

    name = "qsortk"
    default_size = 16384  # elements

    def generate_input(self) -> bytes:
        rng = self.rng()
        return bytes(rng.randrange(256) for __ in range(self.size))

    def transform(self, data: bytes):
        n = len(data)
        cost = int(6 * n * max(1, n.bit_length()))
        return bytes(sorted(data)), cost


class RLECompress(ComputeKernel):
    """Run-length encoding (branchy byte scanning)."""

    name = "rle"
    default_size = 98304

    def generate_input(self) -> bytes:
        rng = self.rng()
        out = bytearray()
        while len(out) < self.size:
            out.extend(bytes([rng.randrange(32)]) * rng.randrange(1, 24))
        return bytes(out[: self.size])

    def transform(self, data: bytes):
        out = bytearray()
        i = 0
        while i < len(data):
            j = i
            while j < len(data) and data[j] == data[i] and j - i < 255:
                j += 1
            out.append(j - i)
            out.append(data[i])
            i = j
        return bytes(out), 7 * len(data)


class ShaLoop(ComputeKernel):
    """Iterated hashing (ALU-bound, tiny working set)."""

    name = "shaloop"
    default_size = 1500  # iterations

    def generate_input(self) -> bytes:
        return hashlib.sha256(f"shaloop-{self.size}".encode()).digest()

    def transform(self, data: bytes):
        digest = data
        for __ in range(self.size):
            digest = hashlib.sha256(digest).digest()
        # ~18 cycles/byte is a plausible software SHA-256 rate.
        return digest, 18 * 64 * self.size


class BFSGraph(ComputeKernel):
    """Breadth-first search over a random graph (pointer chasing)."""

    name = "bfsgraph"
    default_size = 12000  # nodes

    def generate_input(self) -> bytes:
        rng = self.rng()
        n = self.size
        edges = bytearray()
        for node in range(n):
            for __ in range(4):
                edges += rng.randrange(n).to_bytes(4, "little")
        return bytes(edges)

    def transform(self, data: bytes):
        n = self.size
        adj = [
            [int.from_bytes(data[(node * 4 + e) * 4 : (node * 4 + e) * 4 + 4],
                            "little") for e in range(4)]
            for node in range(n)
        ]
        depth = [-1] * n
        depth[0] = 0
        frontier = [0]
        visited = 1
        while frontier:
            nxt = []
            for node in frontier:
                for peer in adj[node]:
                    if depth[peer] < 0:
                        depth[peer] = depth[node] + 1
                        nxt.append(peer)
                        visited += 1
            frontier = nxt
        out = bytes((d + 1) & 0xFF for d in depth)
        return out, 14 * visited + 3 * 4 * n


class Stencil(ComputeKernel):
    """3-point stencil sweeps over an array (streaming arithmetic)."""

    name = "stencil"
    default_size = 32768
    iterations = 10

    def generate_input(self) -> bytes:
        rng = self.rng()
        return bytes(rng.randrange(256) for __ in range(self.size))

    def transform(self, data: bytes):
        cells = list(data)
        for __ in range(self.iterations):
            prev = cells[:]
            for i in range(1, len(cells) - 1):
                cells[i] = (prev[i - 1] + 2 * prev[i] + prev[i + 1]) // 4
        return bytes(cells), 4 * self.size * self.iterations


class Histogram(ComputeKernel):
    """Byte-frequency histogram (read-dominated)."""

    name = "histogram"
    default_size = 262144

    def generate_input(self) -> bytes:
        rng = self.rng()
        return bytes(rng.randrange(256) for __ in range(self.size))

    def transform(self, data: bytes):
        counts = [0] * 256
        for byte in data:
            counts[byte] += 1
        out = b"".join((c & 0xFFFFFFFF).to_bytes(4, "little") for c in counts)
        return out, 5 * len(data)


class StrSearch(ComputeKernel):
    """Substring scanning (comparison-heavy text processing)."""

    name = "strsearch"
    default_size = 196608

    NEEDLES = (b"overshadow", b"cloak", b"shadow", b"vmm")

    def generate_input(self) -> bytes:
        rng = self.rng()
        words = [b"lorem", b"ipsum", b"cloak", b"dolor", b"shadow", b"sit",
                 b"vmm", b"amet", b"overshadow"]
        out = bytearray()
        while len(out) < self.size:
            out += rng.choice(words) + b" "
        return bytes(out[: self.size])

    def transform(self, data: bytes):
        counts = [data.count(needle) for needle in self.NEEDLES]
        out = b"".join(c.to_bytes(4, "little") for c in counts)
        return out, 3 * len(data) * len(self.NEEDLES)




class CRCSweep(ComputeKernel):
    """Table-driven CRC32 over a buffer (lookup-heavy checksumming)."""

    name = "crcsweep"
    default_size = 131072

    _TABLE = None

    @classmethod
    def _table(cls):
        if cls._TABLE is None:
            table = []
            for byte in range(256):
                crc = byte
                for __ in range(8):
                    crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
                table.append(crc)
            cls._TABLE = table
        return cls._TABLE

    def generate_input(self) -> bytes:
        rng = self.rng()
        return bytes(rng.randrange(256) for __ in range(self.size))

    def transform(self, data: bytes):
        table = self._table()
        crc = 0xFFFFFFFF
        out = bytearray()
        for offset in range(0, len(data), 4096):
            for byte in data[offset : offset + 4096]:
                crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
            out += (crc & 0xFFFFFFFF).to_bytes(4, "little")
        # ~3 ops per byte: shift, xor, table lookup.
        return bytes(out), 3 * len(data)


class LZWindow(ComputeKernel):
    """Greedy LZ77-style window compression (string matching)."""

    name = "lzwindow"
    default_size = 32768
    WINDOW = 256
    MIN_MATCH = 4

    def generate_input(self) -> bytes:
        rng = self.rng()
        phrases = [bytes(rng.randrange(97, 123) for __ in range(8))
                   for __ in range(16)]
        out = bytearray()
        while len(out) < self.size:
            out += rng.choice(phrases)
        return bytes(out[: self.size])

    def transform(self, data: bytes):
        out = bytearray()
        i = 0
        comparisons = 0
        while i < len(data):
            best_len = 0
            best_dist = 0
            window_start = max(0, i - self.WINDOW)
            j = window_start
            while j < i:
                length = 0
                while (i + length < len(data) and length < 255
                       and data[j + length] == data[i + length]
                       and j + length < i):
                    length += 1
                comparisons += length + 1
                if length > best_len:
                    best_len = length
                    best_dist = i - j
                j += 1
            if best_len >= self.MIN_MATCH:
                out += b"\x01" + best_dist.to_bytes(2, "little") \
                    + bytes([best_len])
                i += best_len
            else:
                out += b"\x00" + data[i : i + 1]
                i += 1
        return bytes(out), 2 * comparisons


class KMeans(ComputeKernel):
    """1-D k-means clustering (iterative numeric kernel)."""

    name = "kmeans"
    default_size = 12000
    K = 8
    ITERATIONS = 12

    def generate_input(self) -> bytes:
        rng = self.rng()
        return bytes(rng.randrange(256) for __ in range(self.size))

    def transform(self, data: bytes):
        centroids = [int((c + 0.5) * 256 / self.K) for c in range(self.K)]
        work = 0
        for __ in range(self.ITERATIONS):
            sums = [0] * self.K
            counts = [0] * self.K
            for value in data:
                best = min(range(self.K),
                           key=lambda c: abs(value - centroids[c]))
                sums[best] += value
                counts[best] += 1
            work += len(data) * self.K
            centroids = [
                sums[c] // counts[c] if counts[c] else centroids[c]
                for c in range(self.K)
            ]
        out = bytes(centroids)
        # distance + compare per (point, centroid), twice over.
        return out, 2 * work


class RecordParse(ComputeKernel):
    """Parse key=value;... records and aggregate (text processing)."""

    name = "recordparse"
    default_size = 49152

    FIELDS = (b"id", b"qty", b"price", b"tag")

    def generate_input(self) -> bytes:
        rng = self.rng()
        out = bytearray()
        counter = 0
        while len(out) < self.size:
            counter += 1
            out += b"id=%d;qty=%d;price=%d;tag=t%d\n" % (
                counter, rng.randrange(1, 9), rng.randrange(100, 999),
                rng.randrange(4),
            )
        return bytes(out[: self.size])

    def transform(self, data: bytes):
        total_qty = 0
        revenue = 0
        records = 0
        for line in data.splitlines():
            fields = {}
            for pair in line.split(b";"):
                key, _, value = pair.partition(b"=")
                fields[key] = value
            try:
                total_qty += int(fields.get(b"qty", b"0"))
                revenue += (int(fields.get(b"qty", b"0"))
                            * int(fields.get(b"price", b"0")))
                records += 1
            except ValueError:
                continue  # the tail record may be truncated
        out = b"%d,%d,%d" % (records, total_qty, revenue)
        return out, 12 * len(data)  # parsing is ~instruction-per-char x12


#: The R-F1 suite, in presentation order.
COMPUTE_SUITE = (MatMul, QSortK, RLECompress, ShaLoop, BFSGraph, Stencil,
                 Histogram, StrSearch, CRCSweep, LZWindow, KMeans,
                 RecordParse)
