"""Convenience registration of the standard program suite."""

from typing import Iterable, Optional

from repro.apps.compute import COMPUTE_SUITE
from repro.apps.fileio import (FileStreamer, ReadWriteMix, SequentialRead,
                               SequentialWrite)
from repro.apps.forkstress import CompileFarm, ForkStress
from repro.apps.chanpump import ChannelPump
from repro.apps.kvstore import KVStore
from repro.apps.memwalk import WorkingSetWalker
from repro.apps.microbench import EmptyLoop, MICRO_SUITE
from repro.apps.secrets import SecretHolder, SecretWriter
from repro.apps.webserver import WebClient, WebServer
from repro.machine import Machine

ALL_PROGRAMS = (
    tuple(COMPUTE_SUITE)
    + tuple(MICRO_SUITE)
    + (EmptyLoop, FileStreamer, SequentialRead, SequentialWrite, ReadWriteMix,
       ForkStress, CompileFarm, WebServer, WebClient,
       SecretHolder, SecretWriter, WorkingSetWalker, ChannelPump, KVStore)
)


#: Programs a generated guest (:mod:`repro.gen`) may ``exec``.  Kept
#: tiny so every fuzz run registers only this baseline, not the suite.
GEN_EXEC_TARGETS = ("mb-empty",)


def register_all(machine: Machine, cloaked: bool = False,
                 only: Optional[Iterable[str]] = None) -> None:
    """Register the whole suite on ``machine`` (cloaked or native)."""
    wanted = set(only) if only is not None else None
    for program_cls in ALL_PROGRAMS:
        if wanted is not None and program_cls.name not in wanted:
            continue
        machine.register(program_cls, cloaked=cloaked)


def register_programs(machine: Machine, classes: Iterable[type],
                      cloaked: bool = False) -> None:
    """Register ad-hoc program classes (generated programs live
    outside :data:`ALL_PROGRAMS`)."""
    for program_cls in classes:
        machine.register(program_cls, cloaked=cloaked)


def make_secure_dirs(machine: Machine) -> None:
    """Create the directories the suite expects (incl. /secure)."""
    for path in ("/secure", "/srv", "/www", "/bin", "/tmp"):
        if not machine.kernel.vfs.exists(path):
            machine.kernel.vfs.mkdir(path)
