"""File-I/O workloads (R-F2): sequential/random read and write.

Parameterised by buffer size so the harness can sweep it; paths under
``/secure`` exercise the shim's memory-mapped emulation, everything
else the marshalled kernel path.
"""

import hashlib

from repro.apps.program import Program, UserContext
from repro.guestos import uapi


class SequentialWrite(Program):
    """Write ``total_bytes`` in ``buffer_size`` chunks, then sync."""

    name = "seqwrite"

    def __init__(self, path: str = "/data.bin", buffer_size: int = 4096,
                 total_bytes: int = 256 * 1024):
        self.path = path
        self.buffer_size = buffer_size
        self.total_bytes = total_bytes

    def main(self, ctx: UserContext):
        fd = yield from ctx.open_path(self.path,
                                      uapi.O_CREAT | uapi.O_RDWR | uapi.O_TRUNC)
        if fd < 0:
            yield from ctx.print(f"open failed: {fd}\n")
            return 1
        buf = ctx.scratch(self.buffer_size)
        pattern = (hashlib.sha256(self.path.encode()).digest()
                   * (self.buffer_size // 32 + 1))[: self.buffer_size]
        yield ctx.store(buf, pattern)
        written = 0
        while written < self.total_bytes:
            chunk = min(self.buffer_size, self.total_bytes - written)
            count = yield ctx.write(fd, buf, chunk)
            if not isinstance(count, int) or count <= 0:
                yield from ctx.print(f"write failed: {count}\n")
                return 1
            written += count
        yield ctx.close(fd)
        yield from ctx.print(f"wrote {written}\n")
        return 0


class SequentialRead(Program):
    """Read a file front to back in ``buffer_size`` chunks; checksum."""

    name = "seqread"

    def __init__(self, path: str = "/data.bin", buffer_size: int = 4096):
        self.path = path
        self.buffer_size = buffer_size

    def main(self, ctx: UserContext):
        fd = yield from ctx.open_path(self.path, uapi.O_RDONLY)
        if fd < 0:
            yield from ctx.print(f"open failed: {fd}\n")
            return 1
        buf = ctx.scratch(self.buffer_size)
        digest = hashlib.sha256()
        total = 0
        while True:
            count = yield ctx.read(fd, buf, self.buffer_size)
            if not isinstance(count, int) or count <= 0:
                break
            data = yield ctx.load(buf, count)
            digest.update(data)
            total += count
        yield ctx.close(fd)
        yield from ctx.print(f"read {total} {digest.hexdigest()[:16]}\n")
        return 0


class FileStreamer(Program):
    """dd-style tool: one binary, write or read mode via argv.

    argv: (mode, path, buffer_size, total_bytes)

    Being a single program (hence a single identity) matters for
    protected files: only the identity that wrote a cloaked file can
    read it back.  A different program reading the same path gets
    zero-filled pages — the benchmark suites therefore stream with
    this one binary, like real tools do.
    """

    name = "filestreamer"

    def main(self, ctx: UserContext):
        mode = ctx.argv[0]
        path = ctx.argv[1]
        buffer_size = int(ctx.argv[2])
        total_bytes = int(ctx.argv[3])

        if mode == "write":
            worker = SequentialWrite(path, buffer_size, total_bytes)
        elif mode == "read":
            worker = SequentialRead(path, buffer_size)
        else:
            yield from ctx.print(f"bad mode {mode}\n")
            return 1
        code = yield from worker.main(ctx)
        return code or 0


class ReadWriteMix(Program):
    """Alternate writes and read-backs at seeked offsets (random-ish
    access without needing runtime randomness)."""

    name = "rwmix"

    def __init__(self, path: str = "/mix.bin", buffer_size: int = 4096,
                 operations: int = 32):
        self.path = path
        self.buffer_size = buffer_size
        self.operations = operations

    def main(self, ctx: UserContext):
        fd = yield from ctx.open_path(self.path,
                                      uapi.O_CREAT | uapi.O_RDWR | uapi.O_TRUNC)
        if fd < 0:
            return 1
        buf = ctx.scratch(self.buffer_size)
        yield ctx.store(buf, b"\x3c" * self.buffer_size)
        # Stride pattern: hits offsets in a shuffled-but-deterministic
        # order within a file of operations/2 buffers.
        slots = max(1, self.operations // 2)
        for i in range(self.operations):
            slot = (i * 7 + 3) % slots
            offset = slot * self.buffer_size
            yield ctx.lseek(fd, offset, uapi.SEEK_SET)
            if i % 2 == 0:
                yield ctx.write(fd, buf, self.buffer_size)
            else:
                yield ctx.read(fd, buf, self.buffer_size)
        yield ctx.close(fd)
        yield from ctx.print("mix done\n")
        return 0
