"""The guest program model.

Programs are Python generators over :class:`repro.guestos.uapi.UserOp`
objects: every memory touch, compute batch, and syscall of the
simulated application is an explicit yielded operation, executed by
the machine loop under the current protection context.  This is what
lets cloaking act on *real accesses*: when a cloaked program stores a
secret, actual bytes land in an actual frame through the MMU, and the
kernel's later copy of that frame actually observes ciphertext.

A program runs under a *runtime* that drives its generator: the
:class:`NativeRuntime` here passes operations straight through; the
shim runtime (:mod:`repro.core.shim`) interposes on syscalls exactly
like Overshadow's in-process shim.
"""

from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Tuple

from repro.guestos import layout, uapi
from repro.guestos.uapi import (
    Alu,
    Copy,
    GetReg,
    HypercallOp,
    Load,
    SetReg,
    Store,
    Syscall,
    SyscallOp,
    UserOp,
)

OpGen = Generator[UserOp, Any, Any]


class UserContext:
    """Syscall / memory helpers handed to program code.

    All methods *construct* operations; the program must ``yield``
    them.  Buffer-carrying calls take virtual addresses in the
    program's own address space.
    """

    def __init__(self, argv: Tuple[str, ...] = ()):
        self.argv = tuple(argv)
        self.pid: Optional[int] = None
        self._scratch_cursor = layout.DATA_BASE

    # -- memory ----------------------------------------------------------------

    def alu(self, units: int) -> Alu:
        return Alu(units)

    def load(self, vaddr: int, size: int) -> Load:
        return Load(vaddr, size)

    def store(self, vaddr: int, data: bytes) -> Store:
        return Store(vaddr, data)

    def copy(self, src: int, dst: int, nbytes: int) -> Copy:
        return Copy(src, dst, nbytes)

    def set_reg(self, name: str, value: int) -> SetReg:
        return SetReg(name, value)

    def get_reg(self, name: str) -> GetReg:
        return GetReg(name)

    def scratch(self, nbytes: int) -> int:
        """Bump-allocate program-managed scratch space in the data
        segment (no syscall; pages fault in on first touch)."""
        vaddr = self._scratch_cursor
        self._scratch_cursor += (nbytes + 15) & ~15
        limit = layout.DATA_BASE + layout.DATA_MAX_PAGES * 4096
        if self._scratch_cursor > limit:
            raise MemoryError("scratch region exhausted")
        return vaddr

    # -- raw syscall -------------------------------------------------------------

    def syscall(self, number: Syscall, *args, extra=None) -> SyscallOp:
        return SyscallOp(number, args, extra=extra)

    # -- POSIX-flavoured wrappers ---------------------------------------------------

    def exit(self, code: int = 0) -> SyscallOp:
        return self.syscall(Syscall.EXIT, code)

    def getpid(self) -> SyscallOp:
        return self.syscall(Syscall.GETPID)

    def getppid(self) -> SyscallOp:
        return self.syscall(Syscall.GETPPID)

    def open(self, path_vaddr: int, path_len: int, flags: int) -> SyscallOp:
        return self.syscall(Syscall.OPEN, path_vaddr, path_len, flags)

    def close(self, fd: int) -> SyscallOp:
        return self.syscall(Syscall.CLOSE, fd)

    def read(self, fd: int, buf_vaddr: int, nbytes: int) -> SyscallOp:
        return self.syscall(Syscall.READ, fd, buf_vaddr, nbytes)

    def write(self, fd: int, buf_vaddr: int, nbytes: int) -> SyscallOp:
        return self.syscall(Syscall.WRITE, fd, buf_vaddr, nbytes)

    def lseek(self, fd: int, offset: int, whence: int) -> SyscallOp:
        return self.syscall(Syscall.LSEEK, fd, offset, whence)

    def stat(self, path_vaddr: int, path_len: int) -> SyscallOp:
        return self.syscall(Syscall.STAT, path_vaddr, path_len)

    def fstat(self, fd: int) -> SyscallOp:
        return self.syscall(Syscall.FSTAT, fd)

    def unlink(self, path_vaddr: int, path_len: int) -> SyscallOp:
        return self.syscall(Syscall.UNLINK, path_vaddr, path_len)

    def mkdir(self, path_vaddr: int, path_len: int) -> SyscallOp:
        return self.syscall(Syscall.MKDIR, path_vaddr, path_len)

    def mkfifo(self, path_vaddr: int, path_len: int) -> SyscallOp:
        return self.syscall(Syscall.MKFIFO, path_vaddr, path_len)

    def rename(self, old_vaddr: int, old_len: int, new_vaddr: int,
               new_len: int) -> SyscallOp:
        return self.syscall(Syscall.RENAME, old_vaddr, old_len,
                            new_vaddr, new_len)

    def readdir(self, path_vaddr: int, path_len: int, buf_vaddr: int,
                buf_len: int) -> SyscallOp:
        return self.syscall(Syscall.READDIR, path_vaddr, path_len,
                            buf_vaddr, buf_len)

    def truncate(self, fd: int, size: int) -> SyscallOp:
        return self.syscall(Syscall.TRUNCATE, fd, size)

    def mmap(self, length: int, prot: int, flags: int, fd: int = -1,
             offset: int = 0) -> SyscallOp:
        return self.syscall(Syscall.MMAP, length, prot, flags, fd, offset)

    def munmap(self, vaddr: int, length: int) -> SyscallOp:
        return self.syscall(Syscall.MUNMAP, vaddr, length)

    def brk(self, new_brk: int = 0) -> SyscallOp:
        return self.syscall(Syscall.BRK, new_brk)

    def fork(self, child_entry: Callable, *child_args) -> SyscallOp:
        """Fork with an explicit child entry point.

        Python generators cannot be cloned, so the child begins at
        ``child_entry(ctx, *child_args)`` with a *copy* of the parent's
        address space (see DESIGN.md, control-flow fidelity).  Returns
        the child pid in the parent.
        """
        return self.syscall(Syscall.FORK, extra=(child_entry, child_args))

    def exec(self, path_vaddr: int, path_len: int,
             argv: Tuple[str, ...] = ()) -> SyscallOp:
        return self.syscall(Syscall.EXEC, path_vaddr, path_len, extra=argv)

    def waitpid(self, pid: int = -1) -> SyscallOp:
        return self.syscall(Syscall.WAITPID, pid)

    def thread_create(self, entry: Callable, *thread_args) -> SyscallOp:
        """Create a thread starting at ``entry(ctx, *thread_args)``,
        sharing this process's address space and fd table."""
        return self.syscall(Syscall.THREAD_CREATE,
                            extra=(entry, thread_args))

    def thread_join(self, tid: int) -> SyscallOp:
        return self.syscall(Syscall.THREAD_JOIN, tid)

    def kill(self, pid: int, sig: int) -> SyscallOp:
        return self.syscall(Syscall.KILL, pid, sig)

    def sigaction(self, sig: int, action: int) -> SyscallOp:
        """``action``: uapi.SIG_DFL, uapi.SIG_IGN, or 2 ("handled":
        deliveries run the program's ``signal_handler``)."""
        return self.syscall(Syscall.SIGACTION, sig, action)

    def pipe(self) -> SyscallOp:
        return self.syscall(Syscall.PIPE)

    def dup2(self, old_fd: int, new_fd: int) -> SyscallOp:
        return self.syscall(Syscall.DUP2, old_fd, new_fd)

    def sched_yield(self) -> SyscallOp:
        return self.syscall(Syscall.YIELD)

    def gettime(self) -> SyscallOp:
        return self.syscall(Syscall.GETTIME)

    def sync(self) -> SyscallOp:
        return self.syscall(Syscall.SYNC)

    def sigprocmask(self, sig: int, block: bool) -> SyscallOp:
        return self.syscall(Syscall.SIGPROCMASK, sig, 1 if block else 0)

    def nanosleep(self, duration: int) -> SyscallOp:
        return self.syscall(Syscall.NANOSLEEP, duration)

    # -- composite helpers (generators to use with ``yield from``) ----------------

    def put_string(self, text: str) -> "OpGen":
        """Store a string in scratch space; returns (vaddr, length)."""
        data = text.encode()
        vaddr = self.scratch(len(data) or 1)
        yield self.store(vaddr, data or b"\x00")
        return vaddr, len(data)

    def put_bytes(self, data: bytes) -> "OpGen":
        """Store raw bytes in scratch space; returns (vaddr, length)."""
        vaddr = self.scratch(len(data) or 1)
        yield self.store(vaddr, data or b"\x00")
        return vaddr, len(data)

    def open_path(self, path: str, flags: int) -> "OpGen":
        vaddr, length = yield from self.put_string(path)
        fd = yield self.open(vaddr, length, flags)
        return fd

    def write_bytes(self, fd: int, data: bytes) -> "OpGen":
        vaddr = self.scratch(len(data))
        yield self.store(vaddr, data)
        written = yield self.write(fd, vaddr, len(data))
        return written

    def read_bytes(self, fd: int, nbytes: int) -> "OpGen":
        vaddr = self.scratch(nbytes)
        count = yield self.read(fd, vaddr, nbytes)
        if isinstance(count, int) and count > 0:
            data = yield self.load(vaddr, count)
        else:
            data = b""
        return data

    def read_exact(self, fd: int, nbytes: int) -> "OpGen":
        """Read until exactly ``nbytes`` arrived (looping over short
        reads) or the stream ended; returns the bytes collected."""
        vaddr = self.scratch(nbytes or 1)
        got = 0
        while got < nbytes:
            count = yield self.read(fd, vaddr + got, nbytes - got)
            if not isinstance(count, int) or count <= 0:
                break
            got += count
        if got <= 0:
            return b""
        data = yield self.load(vaddr, got)
        return data

    def print(self, text: str) -> "OpGen":
        yield from self.write_bytes(uapi.STDOUT_FD, text.encode())


#: Memoised synthetic program images, keyed by (identity seed, size).
#: Bounded in practice by the number of registered Program classes.
_IMAGE_CACHE: Dict[Tuple[str, int], bytes] = {}


class Program:
    """Base class for guest applications.

    Subclasses implement :meth:`main` as a generator of user ops.  A
    program that installs a handler with ``ctx.sigaction(sig, 2)``
    should also override :meth:`signal_handler`.
    """

    #: Registry name; also the program's "image" identity basis.
    name = "program"

    def main(self, ctx: UserContext) -> OpGen:
        raise NotImplementedError
        yield  # pragma: no cover

    def signal_handler(self, ctx: UserContext, sig: int) -> OpGen:
        """Default handler body: nothing."""
        return
        yield  # pragma: no cover

    def image_bytes(self, image_size: int = 8192) -> bytes:
        """Deterministic synthetic code image for identity hashing.

        Real Overshadow hashes the application binary; we expand the
        program's name and class source position into a stable
        pseudo-binary of ``image_size`` bytes.  The expansion is a pure
        function of (class, name, size), so it is memoised — every
        fresh machine re-registers the same suite of programs.
        """
        import hashlib

        seed = f"{type(self).__module__}.{type(self).__qualname__}:{self.name}"
        cached = _IMAGE_CACHE.get((seed, image_size))
        if cached is not None:
            return cached
        out = bytearray()
        counter = 0
        while len(out) < image_size:
            out.extend(hashlib.sha256(f"{seed}:{counter}".encode()).digest())
            counter += 1
        image = bytes(out[:image_size])
        _IMAGE_CACHE[(seed, image_size)] = image
        return image


class _Frame:
    """One generator on the runtime's execution stack.

    Frames carry their own result inbox so a value produced while a
    signal-handler frame sits on top (e.g. the outcome of a restarted
    syscall) is delivered to the frame that actually yielded for it.
    """

    __slots__ = ("gen", "inbox")

    def __init__(self, gen: Iterator):
        self.gen = gen
        self.inbox = None


class BaseRuntime:
    """Shared generator-stack machinery for user runtimes.

    Subclasses decide how a program generator is wrapped (the shim
    interposes on syscalls; the native runtime does not).
    """

    def __init__(self, program: Program, argv: Tuple[str, ...] = ()):
        self.program = program
        self.ctx = UserContext(argv)
        self._stack: List[_Frame] = []
        self._awaiting: Optional[_Frame] = None
        self._exit_emitted = False
        self._exit_code = 0
        #: Signals for which the program asked for handled delivery.
        self.handled_signals: set = set()
        self._child_entry: Optional[Tuple[Callable, tuple]] = None

    # -- hooks for subclasses ----------------------------------------------

    def _wrap(self, gen: Iterator) -> Iterator:
        """Wrap a program generator (identity for native code)."""
        return gen

    def _initial_stack(self, pid: int) -> List[_Frame]:
        return [_Frame(self._wrap(self.program.main(self.ctx)))]

    # -- lifecycle ------------------------------------------------------------

    def start(self, pid: int) -> None:
        self.ctx.pid = pid
        self._stack = self._initial_stack(pid)

    def start_child(self, pid: int) -> None:
        """Begin a forked child at its designated entry point."""
        if self._child_entry is None:
            raise RuntimeError("not a forked child runtime")
        entry, args = self._child_entry
        self.ctx.pid = pid
        self._stack = [_Frame(self._wrap(entry(self.ctx, *args)))]

    def started(self) -> bool:
        return bool(self._stack) or self._exit_emitted

    def next_op(self, result: Any) -> Optional[uapi.UserOp]:
        """Advance the program; returns the next op, or None when the
        process has already requested exit.

        ``result`` is the outcome of the previously returned op and is
        routed to the frame that yielded it, which is not necessarily
        the current top of stack (a signal handler may have been
        pushed in between).
        """
        if result is not None and self._awaiting is not None:
            self._awaiting.inbox = result
        while self._stack:
            frame = self._stack[-1]
            value, frame.inbox = frame.inbox, None
            try:
                op = frame.gen.send(value)
            except StopIteration as stop:
                self._stack.pop()
                if not self._stack and stop.value is not None:
                    self._exit_code = int(stop.value)
                continue
            self._awaiting = frame
            return self._postprocess(op)
        if not self._exit_emitted:
            self._exit_emitted = True
            return uapi.SyscallOp(Syscall.EXIT, (self._exit_code,))
        return None

    def _postprocess(self, op: uapi.UserOp) -> uapi.UserOp:
        if isinstance(op, uapi.SyscallOp) and op.number == Syscall.SIGACTION:
            sig, action = op.args
            if action == 2:
                self.handled_signals.add(sig)
            else:
                self.handled_signals.discard(sig)
        return op

    # -- signals ----------------------------------------------------------------

    def deliver_signal(self, sig: int) -> bool:
        """Push the program's handler; True when it will run."""
        if sig not in self.handled_signals or not self._stack:
            return False
        handler = self._wrap(self.program.signal_handler(self.ctx, sig))
        self._stack.append(_Frame(handler))
        return True

    # -- fork ----------------------------------------------------------------------

    def _clone_into(self, child: "BaseRuntime", entry: Callable,
                    args: tuple) -> "BaseRuntime":
        child.handled_signals = set(self.handled_signals)
        child.ctx._scratch_cursor = self.ctx._scratch_cursor
        child._child_entry = (entry, args)
        return child

    def make_child(self, entry: Callable, args: tuple) -> "BaseRuntime":
        raise NotImplementedError

    def make_thread(self, entry: Callable, args: tuple) -> "BaseRuntime":
        """A runtime for a thread of this process: shares the program,
        the user context (same address space!), and signal handlers;
        has its own generator stack."""
        raise NotImplementedError

    def _thread_into(self, thread: "BaseRuntime", entry: Callable,
                     args: tuple) -> "BaseRuntime":
        thread.ctx = self.ctx                 # shared address space
        thread.handled_signals = self.handled_signals  # shared dispositions
        thread._child_entry = (entry, args)
        return thread


class NativeRuntime(BaseRuntime):
    """Drives a program directly: no interposition, no protection.

    This is the uncloaked baseline the paper compares against (an
    ordinary process on a VMM).
    """

    def make_child(self, entry: Callable, args: tuple) -> "NativeRuntime":
        return self._clone_into(NativeRuntime(self.program, self.ctx.argv),
                                entry, args)

    def make_thread(self, entry: Callable, args: tuple) -> "NativeRuntime":
        return self._thread_into(NativeRuntime(self.program, self.ctx.argv),
                                 entry, args)
