"""Syscall microbenchmark programs (R-T2, lmbench-style).

Each program runs one kernel operation in a tight loop; the harness
measures whole-program virtual cycles and divides by the iteration
count (subtracting a calibrated empty-loop baseline).  Iteration
counts are small because virtual time is deterministic — there is no
measurement noise to average away.
"""

from repro.apps.program import Program, UserContext
from repro.guestos import uapi
from repro.hw.params import PAGE_SIZE


class MicroBenchmark(Program):
    """Base: N iterations of one operation."""

    default_iterations = 50

    def __init__(self, iterations: int = 0):
        self.iterations = iterations or self.default_iterations

    def setup(self, ctx: UserContext):
        return
        yield  # pragma: no cover

    def one(self, ctx: UserContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def resolve_iterations(self, ctx: UserContext) -> int:
        if ctx.argv:
            return int(ctx.argv[0])
        return self.iterations

    def main(self, ctx: UserContext):
        count = self.resolve_iterations(ctx)
        yield from self.setup(ctx)
        for __ in range(count):
            yield from self.one(ctx)
        yield from ctx.print("done\n")
        return 0


class EmptyLoop(MicroBenchmark):
    """Baseline: loop overhead only (subtracted by the harness)."""

    name = "mb-empty"

    def one(self, ctx):
        yield ctx.alu(1)


class NullCall(MicroBenchmark):
    """getpid(2): the paper's null-syscall latency probe."""

    name = "mb-getpid"

    def one(self, ctx):
        yield ctx.getpid()


class Read4K(MicroBenchmark):
    """read(2) of one page from an unprotected file."""

    name = "mb-read4k"

    def setup(self, ctx):
        fd = yield from ctx.open_path("/mb.dat", uapi.O_CREAT | uapi.O_RDWR)
        self.fd = fd
        yield from ctx.write_bytes(fd, b"\x5a" * PAGE_SIZE)
        self.buf = ctx.scratch(PAGE_SIZE)

    def one(self, ctx):
        yield ctx.lseek(self.fd, 0, uapi.SEEK_SET)
        yield ctx.read(self.fd, self.buf, PAGE_SIZE)


class Write4K(MicroBenchmark):
    """write(2) of one page to an unprotected file."""

    name = "mb-write4k"

    def setup(self, ctx):
        self.fd = yield from ctx.open_path("/mb.dat", uapi.O_CREAT | uapi.O_RDWR)
        self.buf = ctx.scratch(PAGE_SIZE)
        yield ctx.store(self.buf, b"\xa5" * PAGE_SIZE)

    def one(self, ctx):
        yield ctx.lseek(self.fd, 0, uapi.SEEK_SET)
        yield ctx.write(self.fd, self.buf, PAGE_SIZE)


class ReadCloaked4K(MicroBenchmark):
    """read(2) of one page from a *protected* file (ioemu path)."""

    name = "mb-readsec4k"

    def setup(self, ctx):
        fd = yield from ctx.open_path("/secure/mb.dat",
                                      uapi.O_CREAT | uapi.O_RDWR)
        self.fd = fd
        yield from ctx.write_bytes(fd, b"\x5a" * PAGE_SIZE)
        self.buf = ctx.scratch(PAGE_SIZE)

    def one(self, ctx):
        yield ctx.lseek(self.fd, 0, uapi.SEEK_SET)
        yield ctx.read(self.fd, self.buf, PAGE_SIZE)


class OpenClose(MicroBenchmark):
    name = "mb-openclose"

    def setup(self, ctx):
        fd = yield from ctx.open_path("/mb.dat", uapi.O_CREAT | uapi.O_RDWR)
        yield ctx.close(fd)
        self.path = yield from ctx.put_string("/mb.dat")

    def one(self, ctx):
        vaddr, length = self.path
        fd = yield ctx.open(vaddr, length, uapi.O_RDONLY)
        yield ctx.close(fd)


class StatCall(MicroBenchmark):
    name = "mb-stat"

    def setup(self, ctx):
        fd = yield from ctx.open_path("/mb.dat", uapi.O_CREAT | uapi.O_RDWR)
        yield ctx.close(fd)
        self.path = yield from ctx.put_string("/mb.dat")

    def one(self, ctx):
        vaddr, length = self.path
        yield ctx.stat(vaddr, length)


class MmapMunmap(MicroBenchmark):
    """mmap + touch + munmap of 16 KiB anonymous memory."""

    name = "mb-mmap"
    default_iterations = 30

    def one(self, ctx):
        length = 4 * PAGE_SIZE
        vaddr = yield ctx.mmap(length, uapi.PROT_READ | uapi.PROT_WRITE,
                               uapi.MAP_ANON)
        yield ctx.store(vaddr, b"x")
        yield ctx.munmap(vaddr, length)


class BrkGrow(MicroBenchmark):
    """Grow the heap one page at a time and touch it."""

    name = "mb-brk"
    default_iterations = 30

    def setup(self, ctx):
        self.brk = yield ctx.brk(0)

    def one(self, ctx):
        self.brk += PAGE_SIZE
        yield ctx.brk(self.brk)
        yield ctx.store(self.brk - PAGE_SIZE, b"y")


class PageFaultTouch(MicroBenchmark):
    """First-touch cost of fresh anonymous pages (demand paging +,
    when cloaked, zero-fill transitions)."""

    name = "mb-fault"
    default_iterations = 40

    MAX_PAGES = 128

    def setup(self, ctx):
        length = self.MAX_PAGES * PAGE_SIZE
        self.base = yield ctx.mmap(length, uapi.PROT_READ | uapi.PROT_WRITE,
                                   uapi.MAP_ANON)
        self.page = 0

    def one(self, ctx):
        yield ctx.store(self.base + self.page * PAGE_SIZE, b"z")
        self.page += 1


class SignalRoundtrip(MicroBenchmark):
    """Install a handler, signal self, run the handler."""

    name = "mb-signal"
    default_iterations = 30

    def __init__(self, iterations: int = 0):
        super().__init__(iterations)
        self.hits = 0

    def setup(self, ctx):
        yield ctx.sigaction(uapi.SIGUSR1, 2)

    def one(self, ctx):
        yield ctx.kill(ctx.pid, uapi.SIGUSR1)
        yield ctx.sched_yield()  # delivery point

    def signal_handler(self, ctx, sig):
        self.hits += 1
        yield ctx.alu(10)


class ForkWait(MicroBenchmark):
    """fork(2) + immediate child exit + waitpid (paper's worst case).

    The parent keeps a hot working set: touching it between forks is
    what makes cloaked fork expensive (each fork's address-space copy
    re-encrypts every dirty plaintext page).
    """

    name = "mb-fork"
    default_iterations = 8
    HOT_PAGES = 3

    def setup(self, ctx):
        self.hot = ctx.scratch(self.HOT_PAGES * PAGE_SIZE)
        yield ctx.alu(1)

    def child(self, ctx):
        return 0
        yield  # pragma: no cover

    def one(self, ctx):
        for page in range(self.HOT_PAGES):
            yield ctx.store(self.hot + page * PAGE_SIZE, b"hot")
        pid = yield ctx.fork(self.child)
        yield ctx.waitpid(pid)


class ForkExecWait(MicroBenchmark):
    """fork + exec of a trivial program + waitpid."""

    name = "mb-forkexec"
    default_iterations = 6

    def setup(self, ctx):
        self.path = yield from ctx.put_string("/bin/mb-empty")

    def child(self, ctx, path_vaddr, path_len):
        yield ctx.exec(path_vaddr, path_len)
        return 127  # unreachable unless exec failed

    def one(self, ctx):
        vaddr, length = self.path
        pid = yield ctx.fork(self.child, vaddr, length)
        yield ctx.waitpid(pid)


class ThreadCreateJoin(MicroBenchmark):
    """thread_create + join with the same hot working set as mb-fork:
    the thread shares the address space, so no copy and no per-page
    crypto — the contrast with fork is the point."""

    name = "mb-thread"
    default_iterations = 8
    HOT_PAGES = 3

    def setup(self, ctx):
        self.hot = ctx.scratch(self.HOT_PAGES * PAGE_SIZE)
        yield ctx.alu(1)

    def worker(self, ctx):
        return 0
        yield  # pragma: no cover

    def one(self, ctx):
        for page in range(self.HOT_PAGES):
            yield ctx.store(self.hot + page * PAGE_SIZE, b"hot")
        tid = yield ctx.thread_create(self.worker)
        yield ctx.thread_join(tid)


class PipePingPong(MicroBenchmark):
    """One-byte request/response over a pipe pair (2 processes +
    2 context switches per round trip)."""

    name = "mb-pipe"
    default_iterations = 40

    def echo_child(self, ctx, req_r, rsp_w, req_w, rsp_r):
        # Close the inherited ends this side does not use, or EOF
        # never propagates (the classic pipe bug).
        yield ctx.close(req_w)
        yield ctx.close(rsp_r)
        buf = ctx.scratch(8)
        while True:
            count = yield ctx.read(req_r, buf, 1)
            if not isinstance(count, int) or count <= 0:
                break
            yield ctx.write(rsp_w, buf, 1)
        return 0

    def main(self, ctx):
        count = self.resolve_iterations(ctx)
        req_r, req_w = yield ctx.pipe()
        rsp_r, rsp_w = yield ctx.pipe()
        pid = yield ctx.fork(self.echo_child, req_r, rsp_w, req_w, rsp_r)
        yield ctx.close(req_r)
        yield ctx.close(rsp_w)
        buf = ctx.scratch(8)
        yield ctx.store(buf, b"!")
        for __ in range(count):
            yield ctx.write(req_w, buf, 1)
            yield ctx.read(rsp_r, buf, 1)
        yield ctx.close(req_w)
        yield ctx.close(rsp_r)
        yield ctx.waitpid(pid)
        yield from ctx.print("done\n")
        return 0


class ContextSwitch(MicroBenchmark):
    """Two processes alternating via sched_yield."""

    name = "mb-ctxsw"
    default_iterations = 60

    def spinner(self, ctx, rounds):
        for __ in range(rounds):
            yield ctx.sched_yield()
        return 0

    def main(self, ctx):
        count = self.resolve_iterations(ctx)
        pid = yield ctx.fork(self.spinner, count)
        for __ in range(count):
            yield ctx.sched_yield()
        yield ctx.waitpid(pid)
        yield from ctx.print("done\n")
        return 0


#: name -> (class, per-iteration op count) for the R-T2 table.
MICRO_SUITE = (
    NullCall,
    Read4K,
    Write4K,
    ReadCloaked4K,
    OpenClose,
    StatCall,
    MmapMunmap,
    BrkGrow,
    PageFaultTouch,
    SignalRoundtrip,
    PipePingPong,
    ContextSwitch,
    ThreadCreateJoin,
    ForkWait,
    ForkExecWait,
)
