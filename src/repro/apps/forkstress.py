"""Fork/exec-heavy workloads (R-F4): a compile-farm-like job mix.

Process creation is cloaking's worst case — every parent page crosses
the encrypt path during the kernel's address-space copy — so this is
where the paper's largest slowdowns appear.
"""

from repro.apps.program import Program, UserContext
from repro.guestos import uapi


class ForkStress(Program):
    """Fork ``jobs`` children; each does a small unit of work in its
    (copied) address space and exits.

    argv: (jobs, work_units)
    """

    name = "forkstress"

    def job(self, ctx: UserContext, index: int, work_units: int):
        scratch = ctx.scratch(4096)
        yield ctx.store(scratch, bytes([index & 0xFF]) * 512)
        yield ctx.alu(work_units)
        data = yield ctx.load(scratch, 512)
        return 0 if data == bytes([index & 0xFF]) * 512 else 1

    def main(self, ctx: UserContext):
        jobs = int(ctx.argv[0]) if len(ctx.argv) > 0 else 6
        work_units = int(ctx.argv[1]) if len(ctx.argv) > 1 else 20_000

        # Touch a working set first: these pages are what fork copies.
        working_set = ctx.scratch(16 * 4096)
        for page in range(16):
            yield ctx.store(working_set + page * 4096, b"W" * 64)

        failures = 0
        for index in range(jobs):
            pid = yield ctx.fork(self.job, index, work_units)
            result = yield ctx.waitpid(pid)
            if not isinstance(result, tuple) or result[1] != 0:
                failures += 1
        yield from ctx.print(f"forkstress {jobs - failures}/{jobs}\n")
        return 0 if failures == 0 else 1


class CompileFarm(Program):
    """fork + exec of a 'compiler' (a compute kernel) per source file,
    like a `make -j1` sweep.

    argv: (jobs,)
    """

    name = "compilefarm"

    #: The program exec'd per job; must be registered on the machine.
    compiler = "rle"

    def job(self, ctx: UserContext, path_vaddr: int, path_len: int):
        yield ctx.exec(path_vaddr, path_len)
        return 127  # exec failed

    def main(self, ctx: UserContext):
        jobs = int(ctx.argv[0]) if ctx.argv else 4
        path_vaddr, path_len = yield from ctx.put_string(
            f"/bin/{self.compiler}"
        )
        failures = 0
        for __ in range(jobs):
            pid = yield ctx.fork(self.job, path_vaddr, path_len)
            result = yield ctx.waitpid(pid)
            if not isinstance(result, tuple) or result[1] != 0:
                failures += 1
        yield from ctx.print(f"compilefarm {jobs - failures}/{jobs}\n")
        return 0 if failures == 0 else 1
