"""Machine assembly and execution loop.

:class:`Machine` wires the whole system together — simulated hardware,
the Overshadow VMM, and the untrusted guest OS — and plays the role of
the hardware's fetch-execute loop: it pulls user operations from the
scheduled process's runtime, performs them under the correct
protection context, reflects traps into the kernel, and enforces
timeslices.

This is the single entry point examples, tests, and benchmarks use::

    machine = Machine.build()
    machine.register(MyProgram, cloaked=True)
    result = machine.run_program("myprogram")
"""

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.apps.program import NativeRuntime, Program
from repro.core.ctc import ExitReason
from repro.core.errors import OvershadowError
from repro.core.shim import ShimRuntime
from repro.core.vmm import VMM, VMMConfig
from repro.guestos.blockcache import DMAGateway
from repro.guestos.kernel import Kernel
from repro.guestos.process import Process, ProcessState
from repro.guestos.uapi import (
    Alu,
    Blocked,
    Copy,
    GetReg,
    HypercallOp,
    Load,
    SetReg,
    Store,
    Syscall,
    SyscallOp,
    UserOp,
)
from repro.hw.cpu import VirtualCPU
from repro.hw.cycles import CycleAccount, StatCounters
from repro.hw.disk import Disk
from repro.hw.faults import PageFault
from repro.hw.mmu import MMU
from repro.hw.params import MachineParams, default_params
from repro.hw.phys import FrameAllocator, PhysicalMemory
from repro.hw.tlb import SoftwareTLB
from repro.faults.plan import SITE_EVICT_UNDER_USE
from repro.guestos import uapi
from repro.obs import bus

#: Registers left kernel-visible on an intentional syscall.
VISIBLE_SYSCALL_REGS = ("r0", "r1", "r2", "r3", "r4", "r5")

_MASK64 = 0xFFFFFFFFFFFFFFFF


class MachineDeadlock(RuntimeError):
    """Every live process is blocked and nothing can wake them."""


class ViolationRecord:
    """One cloaking violation observed at runtime (attack detected)."""

    __slots__ = ("pid", "error")

    def __init__(self, pid: int, error: OvershadowError):
        self.pid = pid
        self.error = error

    def __repr__(self) -> str:
        return f"ViolationRecord(pid={self.pid}, {type(self.error).__name__})"


class ProcessResult:
    """Outcome of one completed process, for tests and benchmarks."""

    def __init__(self, pid: int, exit_code: int, console: bytes,
                 cycles_total: int, cycles_breakdown: Dict[str, int],
                 stats: Dict[str, int]):
        self.pid = pid
        self.exit_code = exit_code
        self.console = console
        self.cycles_total = cycles_total
        self.cycles_breakdown = cycles_breakdown
        self.stats = stats

    @property
    def text(self) -> str:
        return self.console.decode(errors="replace")

    def __repr__(self) -> str:
        return (f"ProcessResult(pid={self.pid}, exit={self.exit_code}, "
                f"cycles={self.cycles_total})")


class _VMMDma(DMAGateway):
    """Device DMA routed through the VMM (IOMMU interposition)."""

    def __init__(self, vmm: VMM):
        self._vmm = vmm

    def read_frame(self, gpfn: int) -> bytes:
        return self._vmm.dma_read_frame(gpfn)

    def write_frame(self, gpfn: int, data: bytes) -> None:
        self._vmm.dma_write_frame(gpfn, data)


class Machine:
    """A complete simulated host: hardware + VMM + guest OS."""

    def __init__(self, params: Optional[MachineParams] = None,
                 vmm_config: Optional[VMMConfig] = None,
                 fault_plan=None):
        self.params = params or default_params()
        costs = self.params.costs
        self.faults = fault_plan
        if fault_plan is not None:
            # Local import: the zero-fault path must not depend on the
            # injection harness.
            from repro.faults import injector as _inj
        self.cycles = CycleAccount()
        self.stats = StatCounters()
        self.phys = PhysicalMemory(self.params.total_frames)
        self.alloc = FrameAllocator(self.params.total_frames)
        if fault_plan is not None:
            self.tlb = _inj.FaultyTLB(self.params.tlb_entries, fault_plan)
        else:
            self.tlb = SoftwareTLB(self.params.tlb_entries)
        self.mmu = MMU(self.phys, self.tlb, self.cycles, costs)
        self.cpu = VirtualCPU(self.mmu, self.cycles, costs)
        self.vmm = VMM(self.phys, self.mmu, self.cpu, self.cycles, self.stats,
                       costs, config=vmm_config)
        if fault_plan is not None:
            self.disk = _inj.FaultyDisk(self.params.disk_blocks,
                                        self.params.block_size,
                                        self.cycles, costs, plan=fault_plan)
        else:
            self.disk = Disk(self.params.disk_blocks, self.params.block_size,
                             self.cycles, costs)
        self.dma = _VMMDma(self.vmm)
        cache = None
        if fault_plan is not None:
            cache = _inj.FaultyBlockCache(self.disk, self.dma, fault_plan)
        self.kernel = Kernel(self.phys, self.alloc, self.mmu, self.cpu,
                             self.cycles, self.stats, costs, self.disk,
                             self.dma, arch=self.vmm, cache=cache)
        if fault_plan is not None:
            self.vmm.faults = _inj.VMMFaultHooks(fault_plan)
            self.vmm.cloak.faults = _inj.CloakFaultHooks(fault_plan)
            self.kernel.reclaimer.swap = _inj.FaultySwap(
                self.kernel.reclaimer.swap, fault_plan, self.phys)
        self.violations: List[ViolationRecord] = []

    @classmethod
    def build(cls, params: Optional[MachineParams] = None,
              vmm_config: Optional[VMMConfig] = None,
              fault_plan=None) -> "Machine":
        return cls(params, vmm_config, fault_plan)

    # ------------------------------------------------------------------
    # snapshots (boot once, restore per run)
    # ------------------------------------------------------------------

    def snapshot(self):
        """Capture this quiescent machine as a COW snapshot.

        See :mod:`repro.hw.snapshot` for what is shared vs. copied and
        the quiescence/fault-plan restrictions.
        """
        from repro.hw.snapshot import capture
        return capture(self)

    @classmethod
    def from_snapshot(cls, snapshot, fault_plan=None) -> "Machine":
        """A fresh machine restored from ``snapshot``.

        Cycle- and state-identical to a fresh boot that reached the
        capture point; physical frames are copy-on-write against the
        snapshot.  ``fault_plan`` must be given iff the snapshot was
        captured under one (raises
        :class:`repro.hw.snapshot.SnapshotUnusable` when the plan
        cannot be replayed faithfully — fall back to a fresh boot).
        """
        return snapshot.restore(fault_plan)

    # ------------------------------------------------------------------
    # program registration / spawning
    # ------------------------------------------------------------------

    def register(self, program_cls: Type[Program], cloaked: bool = False,
                 name: Optional[str] = None) -> str:
        """Install a program; cloaked programs get the shim runtime and
        a provisioned VMM identity."""
        prototype = program_cls()
        reg_name = name or prototype.name
        image = prototype.image_bytes()
        if cloaked:
            self.vmm.register_identity(reg_name, image)

            def runtime_factory(program, argv, _n=reg_name, _img=image):
                return ShimRuntime(program, argv, _n, _img)
        else:
            def runtime_factory(program, argv):
                return NativeRuntime(program, argv)

        self.kernel.register_program(reg_name, program_cls, runtime_factory,
                                     image)
        return reg_name

    def spawn(self, name: str, argv: Tuple[str, ...] = ()) -> Process:
        return self.kernel.spawn(name, argv)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, max_ops: int = 20_000_000, until=None) -> int:
        """Run until every process has exited; returns ops executed.

        ``until`` (a predicate over the machine) stops execution early
        at a slice boundary once it returns True — the attack harness
        uses it to pause the world at interesting moments.
        """
        executed = 0
        next_reclaim = self._next_reclaim_deadline()
        while executed < max_ops:
            if until is not None and until(self):
                return executed
            if next_reclaim is not None and self.cycles.total >= next_reclaim:
                # Periodic memory pressure: the kernel steals pages.
                try:
                    self.kernel.reclaimer.reclaim(
                        self.params.reclaim_batch_pages)
                except OvershadowError as violation:
                    # Fault injection can make an eviction's encrypt
                    # step refuse (e.g. a stuck version counter).  The
                    # engine raises before mutating any state, so
                    # abandoning the batch is safe; record the
                    # detection against the system (pid -1).
                    self.violations.append(ViolationRecord(-1, violation))
                    self.stats.bump("machine.violations")
                    bus.vmm_violation(-1, type(violation).__name__)
                next_reclaim = self._next_reclaim_deadline()
            self.kernel.wake_due_sleepers()
            proc = self.kernel.scheduler.pick()
            if proc is None:
                if self._advance_idle():
                    continue
                return executed
            executed += self._run_slice(proc)
            if bus.ACTIVE:
                # Per-slice aggregate of the TLB's fast-path counters:
                # per-hit probes would swamp the bus (and the wallclock
                # budget); cumulative totals at slice boundaries carry
                # the same information.
                bus.tlb_hits(self.tlb.hits, self.tlb.misses)
        raise RuntimeError(f"machine did not quiesce within {max_ops} ops")

    def _next_reclaim_deadline(self) -> Optional[int]:
        interval = self.params.reclaim_interval_cycles
        if interval <= 0:
            return None
        return self.cycles.total + interval

    def run_until_output(self, pid: int, marker: bytes,
                         max_ops: int = 20_000_000) -> int:
        """Run until process ``pid`` has printed ``marker``."""
        return self.run(
            max_ops=max_ops,
            until=lambda m: marker in m.kernel.console.output_of(pid),
        )

    def run_program(self, name: str, argv: Tuple[str, ...] = (),
                    max_ops: int = 20_000_000) -> ProcessResult:
        """Spawn one program, run the machine to completion, and report."""
        cycle_snap = self.cycles.snapshot()
        stat_snap = self.stats.snapshot()
        proc = self.spawn(name, argv)
        self.run(max_ops=max_ops)
        delta = self.cycles.since(cycle_snap)
        return ProcessResult(
            pid=proc.pid,
            exit_code=proc.exit_code if proc.exit_code is not None else -1,
            console=self.kernel.console.output_of(proc.pid),
            cycles_total=delta.total,
            cycles_breakdown=delta.breakdown(),
            stats=self.stats.since(stat_snap),
        )

    def _advance_idle(self) -> bool:
        """No READY process: jump to the next sleeper deadline, or
        detect deadlock / completion."""
        deadline = self.kernel.earliest_sleep_deadline()
        if deadline is not None:
            gap = max(0, deadline - self.cycles.total)
            self.cycles.charge("sched", gap)
            self.kernel.wake_due_sleepers()
            return True
        blocked = [p for p in self.kernel.processes.values()
                   if p.state is ProcessState.BLOCKED]
        if blocked:
            raise MachineDeadlock(
                "all runnable work is blocked: "
                + ", ".join(f"{p.pid}:{p.name}" for p in blocked)
            )
        return False

    # ------------------------------------------------------------------
    # one scheduling slice
    # ------------------------------------------------------------------

    def _run_slice(self, proc: Process) -> int:
        kernel = self.kernel
        cycles = self.cycles
        self.cycles.charge("sched", self.params.costs.schedule)

        if self._deliver_signals(proc):
            return 0  # killed by a default-fatal signal
        if proc.state is not ProcessState.RUNNING:
            return 0

        # Restart a syscall that blocked earlier (kernel context).
        if proc.pending_syscall is not None:
            number, args, extra = proc.pending_syscall
            proc.pending_syscall = None
            outcome = kernel.handle_syscall(proc, number, args, extra)
            if isinstance(outcome, Blocked):
                kernel.park(proc, outcome, number, args, extra)
                return 0
            if proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
                return 0
            proc.resume_result = outcome

        # Kernel context-switch: restore the PCB register snapshot (for
        # cloaked threads these are the scrubbed values; the VMM's CTC
        # restore below overrides them with the real ones).
        if proc.saved_regs is not None:
            self.cpu.regs.load(proc.saved_regs)
        vmm = self.vmm
        cpu = self.cpu
        vmm.enter_user(proc.pid, proc.asid)
        slice_start = cycles.total
        result = proc.resume_result
        proc.resume_result = None
        executed = 0

        # The fetch-execute loop below is the single hottest region of
        # the simulator.  Dispatch is by exact class identity with every
        # per-iteration attribute lookup hoisted; the op classes are
        # leaf types (uapi declares no subclasses), so `cls is Alu`
        # decides exactly what `isinstance(op, Alu)` decides, and
        # anything unrecognised falls back to `_execute_op`, which
        # preserves the original isinstance chain and its TypeError.
        # Costs, charge order, and timeslice boundaries are untouched —
        # the cycle ledger stays bit-identical (wallclock --check).
        next_op = proc.runtime.next_op
        user_memory = self._user_memory
        execute = cpu.execute
        regs = cpu.regs
        pid = proc.pid
        timeslice = self.params.timeslice_cycles

        while True:
            op = next_op(result)
            result = None
            executed += 1
            if op is None:
                # Runtime exhausted without an EXIT reaching the kernel.
                vmm.exit_user(pid, ExitReason.INTERRUPT)
                kernel.do_exit(proc, 0)
                return executed

            try:
                cls = op.__class__
                if cls is Alu:
                    execute(op.units)
                elif cls is Load:
                    result = user_memory(proc, op, "load")
                elif cls is Store:
                    user_memory(proc, op, "store")
                elif cls is SyscallOp:
                    disposition, result = self._execute_syscall(proc, op)
                    if disposition == "stop":
                        proc.saved_regs = regs.snapshot()
                        return executed
                    # exec(2) may have swapped in a fresh runtime.
                    next_op = proc.runtime.next_op
                elif cls is Copy:
                    user_memory(proc, op, "copy")
                elif cls is SetReg:
                    regs[op.name] = op.value
                elif cls is GetReg:
                    result = regs[op.name]
                elif cls is HypercallOp:
                    result = vmm.hypercall(op.number, op.args)
                else:
                    disposition, result = self._execute_op(proc, op)
                    if disposition == "stop":
                        proc.saved_regs = regs.snapshot()
                        return executed
            except _SliceOver:
                return executed
            except OvershadowError as violation:
                # The VMM refused to expose cloaked data.  The paper's
                # response: the access never succeeds; we additionally
                # terminate the application (it cannot make progress).
                self.violations.append(ViolationRecord(proc.pid, violation))
                self.stats.bump("machine.violations")
                bus.vmm_violation(proc.pid, type(violation).__name__)
                vmm.exit_user(pid, ExitReason.FAULT)
                kernel.do_exit(proc, 139)
                return executed

            if cycles.total - slice_start >= timeslice:
                if proc.state is ProcessState.RUNNING:
                    vmm.exit_user(pid, ExitReason.INTERRUPT)
                    cpu.interrupt_cost()
                    proc.resume_result = result
                    proc.saved_regs = regs.snapshot()
                    kernel.scheduler.requeue(proc)
                return executed

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------

    def _execute_op(self, proc: Process, op: UserOp) -> Tuple[str, Any]:
        if isinstance(op, Alu):
            self.cpu.execute(op.units)
            return "continue", None
        if isinstance(op, Load):
            return "continue", self._user_memory(proc, op, "load")
        if isinstance(op, Store):
            return "continue", self._user_memory(proc, op, "store")
        if isinstance(op, Copy):
            return "continue", self._user_memory(proc, op, "copy")
        if isinstance(op, SetReg):
            self.cpu.regs[op.name] = op.value
            return "continue", None
        if isinstance(op, GetReg):
            return "continue", self.cpu.regs[op.name]
        if isinstance(op, HypercallOp):
            return "continue", self.vmm.hypercall(op.number, op.args)
        if isinstance(op, SyscallOp):
            return self._execute_syscall(proc, op)
        raise TypeError(f"unknown user op {op!r}")

    def _user_memory(self, proc: Process, op: UserOp, kind: str) -> Any:
        """Perform a user memory op, reflecting page faults to the
        kernel and retrying (restartable instruction semantics)."""
        if self.faults is not None and self.faults.decide(SITE_EVICT_UNDER_USE):
            # Evict-under-use injection: the kernel steals pages right
            # under the running application's feet.  Legitimate (if
            # hostile-looking) behaviour the cloaking protocol must
            # absorb transparently.
            self.kernel.reclaimer.reclaim(self.params.reclaim_batch_pages)
        while True:
            try:
                if kind == "load":
                    return self.mmu.read(op.vaddr, op.size)
                if kind == "store":
                    self.mmu.write(op.vaddr, op.data)
                    return None
                data = self.mmu.read(op.src, op.nbytes)
                self.mmu.write(op.dst, data)
                return None
            except PageFault as fault:
                self.vmm.exit_user(proc.pid, ExitReason.FAULT)
                self.cpu.trap_cost()
                resolved = self.kernel.handle_page_fault(proc, fault)
                if not resolved:
                    self.kernel.post_signal(proc, uapi.SIGSEGV)
                    # Default action is fatal unless handled.
                    if self.kernel.signal_action(proc, uapi.SIGSEGV) != 2:
                        self.kernel.do_exit(proc, 128 + uapi.SIGSEGV)
                        raise _SliceOver()
                self.vmm.enter_user(proc.pid, proc.asid)

    def _execute_syscall(self, proc: Process, op: SyscallOp) -> Tuple[str, Any]:
        # Stage integer arguments in the argument registers — this is
        # what the kernel is allowed to see (CTC scrubbing keeps the
        # rest hidden for cloaked threads).  zip truncates at six args,
        # matching the register file's argument window.
        regs = self.cpu.regs
        for name, arg in zip(VISIBLE_SYSCALL_REGS, op.args):
            if isinstance(arg, int):
                regs[name] = arg & _MASK64
        self.vmm.exit_user(proc.pid, ExitReason.SYSCALL,
                           visible_regs=VISIBLE_SYSCALL_REGS)
        self.cpu.trap_cost()

        runtime_before = proc.runtime
        outcome = self.kernel.handle_syscall(proc, op.number, op.args, op.extra)

        if isinstance(outcome, Blocked):
            self.kernel.park(proc, outcome, op.number, op.args, op.extra)
            return "stop", None
        if proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD):
            return "stop", None
        # Return-to-user is a signal delivery point (as on real
        # kernels): fatal defaults take effect before the next
        # instruction, handlers run before the syscall result is
        # consumed... exactly POSIX's "interrupted at the boundary".
        if self._deliver_signals(proc):
            return "stop", None
        if proc.runtime is not runtime_before:
            # exec(2): a fresh runtime; nothing to deliver to the old one.
            self.vmm.enter_user(proc.pid, proc.asid)
            return "continue", None
        if op.number == Syscall.YIELD:
            proc.resume_result = outcome
            self.kernel.scheduler.requeue(proc)
            return "stop", None
        self.vmm.enter_user(proc.pid, proc.asid)
        return "continue", outcome

    # ------------------------------------------------------------------
    # signal delivery
    # ------------------------------------------------------------------

    def _deliver_signals(self, proc: Process) -> bool:
        """Deliver pending signals; returns True if the process died."""
        while True:
            sig = self.kernel.next_deliverable_signal(proc)
            if sig is None:
                return False
            action = self.kernel.signal_action(proc, sig)
            if action == 2 and proc.runtime.deliver_signal(sig):
                # Through the uncloaked trampoline for cloaked threads;
                # the interrupted context stays saved (CTC nesting).
                self.cycles.charge("kernel", self.params.costs.interrupt)
                self.stats.bump("kernel.signals_delivered")
                continue
            if sig in uapi.FATAL_SIGNALS:
                self.kernel.do_exit(proc, 128 + sig)
                self.stats.bump("kernel.signals_fatal")
                return True
            # Default action for everything else: ignore.


class _SliceOver(Exception):
    """Internal: unwinds op execution after a fatal fault."""
