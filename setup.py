"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail.  This file lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the
classic setuptools develop mode instead.
"""

from setuptools import setup

setup()
