"""R-T1: cloaking state-transition cost matrix."""

from repro.bench import exp_transitions


def test_exp_transitions(once):
    results = once(exp_transitions.run)
    # Structural expectations (the paper's state diagram):
    assert results["app first touch (zero-fill)"] > 0
    assert results["app write, already plaintext (no-op)"] == 0
    # Crypto transitions dominate non-crypto ones.
    decrypt = results["app access, encrypted (verify+decrypt)"]
    encrypt = results["system touch, dirty plaintext (encrypt+MAC)"]
    restore = results["system touch, clean plaintext (ciphertext restore)"]
    assert decrypt > 5 * restore
    assert encrypt > 5 * restore
    # The clean-page optimisation is what makes restore cheap.
    no_opt = results["system touch, clean plaintext w/o optimisation"]
    assert no_opt > 5 * restore
