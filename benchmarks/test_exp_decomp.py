"""R-F7: transition costs decomposed from probe-bus events.

The completeness proof for the probe stream: if the cloak engine ever
charges cycles on a transition path without emitting the matching
probe (or emits a probe whose ``cost`` field disagrees with what it
charged), the probe-derived table stops matching the ledger-derived
R-T1 and these tests fail.
"""

from repro.bench import exp_decomp, exp_transitions


def test_exp_decomp(once):
    results = once(exp_decomp.run)
    # The probe decomposition must equal the ledger measurement exactly,
    # transition by transition — not approximately, not structurally.
    assert results == exp_transitions.run(verbose=False)


def test_expected_transition_values():
    results = exp_decomp.run(verbose=False)
    assert results["app first touch (zero-fill)"] == 520
    assert results["app write, already plaintext (no-op)"] == 0
    assert results["app access, encrypted (verify+decrypt)"] == 9000
    assert results["system touch, dirty plaintext (encrypt+MAC)"] == 9000
    assert results["system touch, clean plaintext (ciphertext restore)"] == 900
    assert results["system touch, clean plaintext w/o optimisation"] == 9000


def test_verbose_table_reports_full_agreement(capsys):
    exp_decomp.run(verbose=True)
    out = capsys.readouterr().out
    assert "R-F7" in out
    assert "matches the cycle ledger exactly" in out
