"""Shared configuration for the benchmark harness.

Every test regenerates one table/figure of the (reconstructed)
evaluation and prints it; pytest-benchmark additionally records the
harness wall-clock.  Experiments are deterministic, so a single round
is exact — there is no noise to average away.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
