"""Shared configuration for the benchmark harness.

Every test regenerates one table/figure of the (reconstructed)
evaluation and prints it; pytest-benchmark additionally records the
harness wall-clock.  Experiments are deterministic, so a single round
is exact — there is no noise to average away.

The ``once`` fixture *enforces* that claim: each experiment runs
twice (the second pass silent) and the harness fails on any drift in
the produced numbers — cycle counters included.  Nondeterminism in an
experiment would invalidate every comparison the suite prints, so it
is treated as a harness error, not noise.

The two passes deliberately use *different boot modes*: the first
runs with golden-snapshot reuse (the default), the replay under
:func:`repro.hw.snapshot.force_fresh` boots every machine from
scratch.  Any divergence between a restored machine and a fresh boot
therefore fails the same drift check, so snapshot equivalence is
re-proven by every experiment at zero extra cost — the replay ran
anyway, and the snapshot-backed first pass is strictly cheaper than
the fresh pass it replaced.
"""

from typing import Any

import pytest

from repro.bench.tables import Series, Table
from repro.hw import snapshot as snapshot_mod


def _comparable(value: Any) -> Any:
    """Project an experiment result onto comparable plain data."""
    if isinstance(value, Series):
        return ("series", value.title, value.x_label, value.series_names,
                [(x, tuple(_comparable(v) for v in vals))
                 for x, vals in value.points])
    if isinstance(value, Table):
        return ("table", value.title, tuple(value.columns),
                [tuple(row) for row in value.rows])
    if isinstance(value, dict):
        return {k: _comparable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_comparable(v) for v in value]
    if hasattr(type(value), "__slots__") and not isinstance(value, (str, bytes)):
        return {slot: _comparable(getattr(value, slot))
                for slot in type(value).__slots__}
    return value


def _drift(first: Any, second: Any) -> str:
    a, b = _comparable(first), _comparable(second)
    if a == b:
        return ""
    if isinstance(a, tuple) and a and a[0] == "series":
        for (xa, va), (xb, vb) in zip(a[4], b[4]):
            if (xa, va) != (xb, vb):
                return f"series point drifted at x={xa}: {va} != {vb}"
    return f"{a!r} != {b!r}"


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment under pytest-benchmark, then replay it and
    fail on any drift in the results (the determinism guard).

    The timed pass rides golden snapshots; the replay boots fresh —
    see the module docstring for why the asymmetry is the point."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    replay_kwargs = dict(kwargs)
    replay_kwargs.setdefault("verbose", False)
    with snapshot_mod.force_fresh():
        replay = fn(*args, **replay_kwargs)
    drift = _drift(result, replay)
    assert not drift, (
        f"experiment {getattr(fn, '__module__', fn)!s} drifted across "
        f"same-process re-runs (cycle counters are not deterministic): "
        f"{drift}"
    )
    # Results that define their own content hash (e.g. the fuzz
    # campaign's CampaignReport) get the stronger byte-identity check:
    # the serialized report, not just its comparable projection.
    if callable(getattr(result, "digest", None)) \
            and callable(getattr(replay, "digest", None)):
        assert result.digest() == replay.digest(), (
            f"experiment {getattr(fn, '__module__', fn)!s} replay produced "
            f"a different serialized report"
        )
    return result


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
