"""R-A4: do the headline conclusions survive other cost models?"""

from repro.bench import sensitivity


def test_cost_model_sensitivity(once):
    results = once(sensitivity.run)

    for scenario, values in results.items():
        # C1: compute-bound overhead stays small in every cost regime.
        assert values["compute overhead %"] < 20.0, scenario
        # C2: fork stays clearly the worst case.
        assert values["fork slowdown x"] > 1.4, scenario
        # C3: protected-file streaming always costs more than plain —
        # though the margin compresses toward ~1.1x when crypto is
        # nearly free (the residual is window bookkeeping), which is
        # itself the forward-looking insight.
        assert values["protected-file cost x"] > 1.05, scenario
        # C4: flushing per switch never beats multi-shadowing.
        assert values["flush penalty x"] > 1.2, scenario

    # And the model responds in the right direction: cheaper crypto
    # shrinks the crypto-bound ratios.
    base = results["2008 software crypto (baseline)"]
    fast = results["hw crypto (AES-NI-like, 1/8 cost)"]
    assert fast["fork slowdown x"] < base["fork slowdown x"]
    assert fast["protected-file cost x"] < base["protected-file cost x"]
    slow = results["slow crypto (4x cost)"]
    assert slow["fork slowdown x"] > base["fork slowdown x"]
