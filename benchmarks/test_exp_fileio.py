"""R-F2: file-I/O bandwidth vs buffer size."""

from repro.bench import exp_fileio


def test_exp_fileio(once):
    series = once(exp_fileio.run)
    native = series.series("native/plain")
    marshalled = series.series("cloaked/plain (marshalled)")
    emulated = series.series("cloaked/protected (emulated)")

    # Marshalling costs one extra copy: strictly slower than native,
    # but the same order of magnitude.
    for n, m in zip(native, marshalled):
        assert m < n
        assert m > 0.3 * n

    # The emulated path is crypto-bound for cold streaming: slower
    # than marshalled here (its win is warm reuse, shown in R-T2).
    for m, e in zip(marshalled, emulated):
        assert 0 < e <= m

    # Native bandwidth improves as buffers amortise syscall costs.
    assert native[2] > native[0]
