"""R-A1: lazy vs eager re-encryption."""

from repro.bench import ablation


def test_ablation_lazy_vs_eager(once):
    results = once(ablation.run_lazy_vs_eager)
    lazy, eager = results["lazy"], results["eager"]

    # Eager is never cheaper, and is dramatically worse for workloads
    # with resident plaintext and frequent kernel entries.
    for name in lazy:
        assert eager[name] >= lazy[name], name
    assert eager["seqwrite-secure"] > 1.5 * lazy["seqwrite-secure"]
    assert eager["mb-getpid"] > 1.2 * lazy["mb-getpid"]

    # Pure context switching without plaintext residency barely cares.
    assert eager["mb-ctxsw"] < 1.3 * lazy["mb-ctxsw"]
