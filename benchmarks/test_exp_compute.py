"""R-F1: compute-workload suite (the SPEC-like figure)."""

from repro.bench import exp_compute


def test_exp_compute(once):
    rows = once(exp_compute.run)
    overheads = {name: pct for name, __, __, pct in rows}

    # Cloaking costs something, but compute-bound workloads stay
    # within tens of percent (paper: single digits on hour-long runs;
    # our runs are ~1M cycles, so startup amortisation is partial).
    for name, pct in overheads.items():
        assert 0.0 <= pct < 35.0, (name, pct)

    # The most compute-dense kernels land in the single digits.
    assert overheads["shaloop"] < 5.0
    assert overheads["qsortk"] < 5.0
    assert overheads["stencil"] < 5.0

    # Mean overhead is modest — the paper's headline claim.
    mean = sum(overheads.values()) / len(overheads)
    assert mean < 15.0
