"""R-F5 (extension): cloaking overhead under memory pressure."""

from repro.bench import exp_pressure


def test_exp_pressure(once):
    rows = once(exp_pressure.run)
    by_label = {label: (native, cloaked, pct, swapins)
                for label, native, cloaked, pct, swapins in rows}

    # No pressure: the usual modest overhead.
    assert by_label["none"][2] < 25.0
    assert by_label["none"][3] == 0

    # Overhead grows monotonically with pressure...
    overheads = [pct for __, __, ___, pct, ____ in rows]
    assert overheads == sorted(overheads)

    # ...because every steal round-trips the crypto path.
    assert by_label["harsh"][2] > 3 * by_label["mild"][2]
    assert by_label["harsh"][3] > by_label["mild"][3]

    # And through all of it the application stayed correct (the
    # walker verifies every page; run() would have raised otherwise).
