"""R-T3: VMM resource overhead and cloaking event counts."""

from repro.bench import exp_overhead
from repro.core.metadata import METADATA_BYTES_PER_PAGE


def test_exp_overhead(once):
    results = once(exp_overhead.run)

    # Compute workloads take almost no transitions...
    matmul = results["matmul"]
    assert matmul["encrypts"] == 0
    assert matmul["decrypts"] == 0

    # ...protected file I/O encrypts per page on unbind/writeback,
    secure = results["seqwrite-secure"]
    assert secure["encrypts"] >= 128 * 1024 // 4096  # one per file page

    # ...and fork drags the working set through the encrypt path.
    fork = results["forkstress"]
    assert fork["encrypts"] > 0

    # Space overhead: fixed bytes per page, two-digit page counts for
    # these small workloads (paper: metadata is a tiny fraction of the
    # protected memory — 80 bytes per 4096-byte page is ~2%).
    space = results["_space"]
    assert space["page_metadata_peak_bytes"] == \
        space["page_metadata_peak_entries"] * METADATA_BYTES_PER_PAGE
    assert METADATA_BYTES_PER_PAGE / 4096 < 0.03
