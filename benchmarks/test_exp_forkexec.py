"""R-F4: fork/exec-heavy workloads."""

from repro.bench import exp_forkexec


def test_exp_forkexec(once):
    rows = once(exp_forkexec.run)
    by_name = {name: (native, cloaked, slowdown, crypto)
               for name, native, cloaked, slowdown, crypto in rows}

    # Fork-dominated runs show the paper's worst-case slowdowns...
    assert by_name["forkstress x2"][2] > 1.3

    # ...and a crypto-dominated cycle breakdown,
    assert by_name["forkstress x2"][3] > 15.0

    # while compute-heavy compile jobs amortise it away.
    assert by_name["compilefarm x4"][2] < 1.5

    # More jobs = more amortisation of the constant domain setup.
    assert by_name["forkstress x8"][2] <= by_name["forkstress x2"][2]
