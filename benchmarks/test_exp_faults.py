"""R-T5: the fault-recovery outcome matrix."""

from repro.bench import exp_faults
from repro.faults import oracle
from repro.faults.plan import (
    SITE_EVICT_UNDER_USE,
    SITE_HYPERCALL_DUPLICATE,
    SITE_HYPERCALL_RETRY,
)

#: Injection points whose matrix scenario absorbs the fault entirely.
RECOVER_SITES = {SITE_EVICT_UNDER_USE, SITE_HYPERCALL_DUPLICATE,
                 SITE_HYPERCALL_RETRY}


def test_exp_faults(once):
    rows = once(exp_faults.run)

    # The headline: no injected fault is ever EXPOSED or CORRUPTED.
    assert exp_faults.all_contained(rows), \
        [(r.site, r.outcome, r.replay) for r in rows]

    # Every registered injection point appears and actually fired —
    # a matrix row that never triggers proves nothing.
    sites = {row.site for row in rows}
    assert sites == set(oracle.INJECTION_POINTS)
    for row in rows:
        assert row.fires > 0, (row.site, row.replay)

    # Outcomes are deterministic, so pin them: delivery faults on
    # idempotent hypercalls and premature eviction are absorbed;
    # every corruption of data or protocol metadata is detected as a
    # typed violation.
    for row in rows:
        expected = (oracle.OUTCOME_RECOVERED if row.site in RECOVER_SITES
                    else oracle.OUTCOME_DETECTED)
        assert row.outcome == expected, \
            (row.site, row.outcome, row.violations, row.replay)
