"""R-T6: the differential fuzzing campaign."""

import json
from pathlib import Path

from repro.apps.microbench import MICRO_SUITE
from repro.bench import exp_fuzz
from repro.bench.runner import fresh_machine, measure_program

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_BENCH = REPO_ROOT / "BENCH_wallclock.json"


def test_exp_fuzz(once):
    report = once(exp_fuzz.run)

    # The headline: a generated population the size of the hand-written
    # suite finds no transparency, hygiene, or determinism failure.
    assert exp_fuzz.zero_divergences(report), [
        (s.slot, s.status, s.detail, s.replay) for s in report.failures()
    ]

    # Coverage claims printed in the table must actually hold.
    assert report.syscalls_missing() == []
    assert len(report.fault_sites) >= 12, report.fault_sites_missing()

    # Every armed rotation slot stayed contained.
    for slot in report.slots:
        if slot.fault_site is not None:
            assert slot.fault_outcome in ("RECOVERED", "DETECTED"), \
                (slot.fault_site, slot.fault_outcome, slot.replay)


def test_campaign_leaves_bench_cycles_untouched():
    """A campaign must not leak state into the cycle-accounted world:
    the mb-suite totals pinned in BENCH_wallclock.json have to come
    out identical when measured right after a fuzz run."""
    exp_fuzz.run(verbose=False, count=8)
    machine = fresh_machine(cloaked=True)
    cycles = sum(measure_program(machine, cls.name, ()).cycles_total
                 for cls in MICRO_SUITE)
    committed = json.loads(COMMITTED_BENCH.read_text(encoding="utf-8"))
    assert cycles == committed["workloads"]["mb-suite"]["cycles"]
