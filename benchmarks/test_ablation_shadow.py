"""R-A3: multi-shadowing vs single-shadow-flush-per-switch."""

from repro.bench import ablation


def test_ablation_shadow_policy(once):
    results = once(ablation.run_shadow_policy)
    tagged, flush = results["tagged"], results["flush"]

    # Flushing on every protection-context switch is never cheaper.
    for name in tagged:
        assert flush[name] >= tagged[name], name

    # Syscall- and context-switch-heavy workloads show why
    # multi-shadowing exists: every kernel entry is a view switch.
    assert flush["mb-getpid"] > 1.25 * tagged["mb-getpid"]
    assert flush["mb-ctxsw"] > 1.25 * tagged["mb-ctxsw"]

    # Compute-bound workloads switch rarely and barely notice.
    assert flush["matmul"] < 1.1 * tagged["matmul"]
