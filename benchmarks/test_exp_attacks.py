"""R-T4: the security-evaluation outcome matrix."""

from repro.bench import exp_attacks


def test_exp_attacks(once):
    rows = once(exp_attacks.run)

    # The headline: no attack ever extracts plaintext (or silently
    # corrupts data) from a cloaked victim.
    assert exp_attacks.cloaked_is_safe(rows)

    # Every attack that is in the threat model succeeds against the
    # uncloaked baseline — otherwise the probes prove nothing.
    for name, (native, __) in rows.items():
        if name.startswith("syscall-lie"):
            continue  # boundary rows
        assert native == "LEAKED", (name, native)

    # Tampering and replay are *detected* (integrity), scraping is
    # *defeated* (privacy).
    assert rows["tamper-bitflip"][1] == "DETECTED"
    assert rows["replay-rollback"][1] == "DETECTED"
    assert rows["remap-swap"][1] == "DETECTED"
    assert rows["memory-scrape"][1] == "DEFEATED"
    assert rows["register-scrape"][1] == "DEFEATED"
    assert rows["disk-scrape"][1] == "DEFEATED"

    # The acknowledged limit stays acknowledged.
    assert rows["syscall-lie-unprotected"][1] == "OUT-OF-SCOPE"
    assert rows["syscall-lie-protected"][1] == "DEFEATED"
