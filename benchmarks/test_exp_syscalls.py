"""R-T2: syscall microbenchmark latency table."""

from repro.bench import exp_syscalls


def test_exp_syscalls(once):
    rows = once(exp_syscalls.run)
    by_name = {name: (native, cloaked, slowdown)
               for name, native, cloaked, slowdown in rows}

    # Every cloaked syscall pays at least the CTC/world-switch tax...
    for name, (native, cloaked, slowdown) in by_name.items():
        if name == "mb-readsec4k":
            continue  # the emulated path may beat the kernel path
        assert cloaked >= native, name

    # ...the null call by a modest constant factor,
    assert 1.05 <= by_name["mb-getpid"][2] <= 3.0

    # buffer-carrying calls pay marshalling on top,
    assert by_name["mb-read4k"][2] > by_name["mb-getpid"][2]

    # emulated protected reads beat the marshalled path warm,
    assert by_name["mb-readsec4k"][1] < by_name["mb-read4k"][1]

    # and fork+exec is the worst case in the table (paper's shape).
    worst = max(by_name.values(), key=lambda row: row[2])
    assert worst == by_name["mb-forkexec"] or worst == by_name["mb-fork"]
