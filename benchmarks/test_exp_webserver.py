"""R-F3: web-server throughput vs concurrency — both loops."""

from repro.bench import exp_webserver


def test_exp_webserver(once):
    result = once(exp_webserver.run)
    closed = result["closed"]
    native = closed.series("native server")
    cloaked = closed.series("cloaked server")

    # The cloaked server keeps a solid fraction of native throughput
    # at every concurrency level (paper: moderate constant overhead).
    for n, c in zip(native, cloaked):
        assert 0.4 * n < c < n

    # Throughput does not collapse with concurrency in either mode.
    assert cloaked[-1] >= 0.8 * cloaked[0]
    assert native[-1] >= 0.8 * native[0]

    # Open-loop leg: the cloaked tail is no better than native, and
    # within each mode p95 >= p50 by construction.
    open_series = result["open"]
    for column in ("native", "cloaked"):
        p50 = open_series.series(f"{column} p50")
        p95 = open_series.series(f"{column} p95")
        assert all(hi >= lo > 0 for lo, hi in zip(p50, p95))
    assert all(c >= n for n, c in zip(open_series.series("native p95"),
                                      open_series.series("cloaked p95")))

    # Coordinated omission is visible: at the highest concurrency the
    # open-loop p95 exceeds the closed-loop implied mean latency —
    # the queueing the closed loop silently discards.
    gap = result["gap"]
    assert gap.columns[-1] == "hidden queueing x"
    assert float(gap.rows[-1][-1]) > 1.0
