"""R-F3: web-server throughput vs concurrency."""

from repro.bench import exp_webserver


def test_exp_webserver(once):
    series = once(exp_webserver.run)
    native = series.series("native server")
    cloaked = series.series("cloaked server")

    # The cloaked server keeps a solid fraction of native throughput
    # at every concurrency level (paper: moderate constant overhead).
    for n, c in zip(native, cloaked):
        assert 0.4 * n < c < n

    # Throughput does not collapse with concurrency in either mode.
    assert cloaked[-1] >= 0.8 * cloaked[0]
    assert native[-1] >= 0.8 * native[0]
