"""R-T7: cluster serving — capacity scaling and tail overhead."""

from repro.bench import exp_cluster


def test_exp_cluster(once):
    result = once(exp_cluster.run)
    scaling = result["scaling"]
    native = scaling.series("native")
    cloaked = scaling.series("cloaked")

    # Cloaking costs capacity but never collapses it.
    for n, c in zip(native, cloaked):
        assert 0.3 * n < c < n

    # Capacity per shard stays roughly flat as shards are added
    # (offered load scales with N; shards are independent machines).
    assert native[-1] >= 0.5 * native[0]
    assert cloaked[-1] >= 0.5 * cloaked[0]

    # Every run completed every scheduled request, no shard degraded.
    for report in result["reports"].values():
        assert not report["degraded"]
        assert report["cluster"]["completed"] == report["cluster"]["requests"]

    # The tail table covers the standard quantiles with native <= cloaked.
    tail = result["tail"]
    assert [row[0] for row in tail.rows] == ["p50", "p95", "p99", "p999"]
    for row in tail.rows:
        native_cell = float(row[1].replace(",", ""))
        cloaked_cell = float(row[2].replace(",", ""))
        assert cloaked_cell >= native_cell > 0
