"""R-F6 (extension): sealed-IPC throughput vs message size."""

from repro.bench import exp_channels


def test_exp_channels(once):
    series = once(exp_channels.run)
    native = series.series("native/plain")
    plain = series.series("cloaked/plain")
    sealed = series.series("cloaked/sealed")

    # Protection is ordered: sealing < marshalling < native throughput.
    for n, p, s in zip(native, plain, sealed):
        assert s < p < n
        assert s > 0.1 * n  # but within an order of magnitude

    # Larger messages amortise per-record costs in every mode.
    assert sealed[-1] > sealed[0]
    assert native[-1] > native[0]
