"""R-A2: protection modes (full vs integrity-only vs no clean-page
optimisation)."""

from repro.bench import ablation


def test_ablation_integrity_modes(once):
    results = once(ablation.run_integrity_modes)
    full = results["full"]
    mac_only = results["integrity_only"]
    no_clean = results["no_clean_opt"]

    # Dropping privacy (cipher) but keeping MACs saves a large slice
    # of the crypto bill on crypto-heavy paths...
    assert mac_only["seqwrite-secure"] < 0.85 * full["seqwrite-secure"]
    assert mac_only["mb-fork"] < 0.8 * full["mb-fork"]

    # ...and changes nothing for compute-bound workloads.
    assert mac_only["matmul"] == full["matmul"]

    # The clean-page optimisation earns its keep on read-mostly
    # protected I/O (unmodified pages skip re-encryption).
    assert no_clean["seqread-secure"] > 1.2 * full["seqread-secure"]
    # And never hurts.
    for name in full:
        assert no_clean[name] >= full[name], name
